"""Tests for the memoizing RoutingEngine facade.

The engine must be invisible semantically — every answer byte-identical
to the pure kernel — while the cache counters prove it is actually
reusing work (superset matching, batch grouping, LRU eviction).
"""

import random

import pytest

from repro.asgraph import (
    RoutingEngine,
    TopologyConfig,
    compute_routes,
    generate_topology,
    set_shared_engine,
    shared_engine,
)
from repro.asgraph.routing import as_path
from repro.asgraph.topology import ASGraph
from repro.serve.api import OutcomeBatch, PathBatch


def diamond() -> ASGraph:
    g = ASGraph()
    g.add_peer_link(1, 2)
    g.add_provider_link(customer=3, provider=1)
    g.add_provider_link(customer=3, provider=2)
    g.add_provider_link(customer=4, provider=3)
    return g


class TestMemoisation:
    def test_repeated_query_hits_cache(self, tiny_graph):
        engine = RoutingEngine()
        first = engine.outcome(tiny_graph, [10])
        second = engine.outcome(tiny_graph, [10])
        assert second is first
        stats = engine.stats()
        assert stats.queries == 2
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_full_outcome_answers_targeted_query(self, tiny_graph):
        engine = RoutingEngine()
        full = engine.outcome(tiny_graph, [10])
        targeted = engine.outcome(tiny_graph, [10], targets=frozenset({59}))
        assert targeted is full
        assert engine.stats().hits == 1

    def test_target_superset_answers_subset(self, tiny_graph):
        engine = RoutingEngine()
        wide = engine.outcome(tiny_graph, [10], targets=frozenset({40, 50, 59}))
        narrow = engine.outcome(tiny_graph, [10], targets=frozenset({50}))
        assert narrow is wide
        assert engine.stats().hits == 1

    def test_targeted_outcome_does_not_answer_wider_query(self, tiny_graph):
        engine = RoutingEngine()
        engine.outcome(tiny_graph, [10], targets=frozenset({59}))
        engine.outcome(tiny_graph, [10], targets=frozenset({58, 59}))
        assert engine.stats().hits == 0
        assert engine.stats().misses == 2

    def test_distinct_parameters_are_distinct_entries(self, tiny_graph):
        engine = RoutingEngine()
        a = engine.outcome(tiny_graph, [10])
        b = engine.outcome(tiny_graph, [10], excluded_links=[frozenset({10, 11})])
        c = engine.outcome(tiny_graph, [10, 20])
        assert a is not b and a is not c
        assert engine.stats().misses == 3

    def test_outcome_matches_pure_kernel(self, tiny_graph):
        engine = RoutingEngine()
        cached = engine.outcome(tiny_graph, [10, 20])
        pure = compute_routes(tiny_graph, [10, 20])
        assert dict(cached.items()) == dict(pure.items())

    def test_path_matches_as_path(self, tiny_graph):
        engine = RoutingEngine()
        for src, dst in [(59, 10), (3, 42), (17, 17)]:
            assert engine.path(tiny_graph, src, dst) == as_path(tiny_graph, src, dst)


class TestInvalidation:
    def test_invalidate_after_mutation(self):
        g = diamond()
        engine = RoutingEngine()
        assert engine.path(g, 4, 1) == (4, 3, 1)
        g.add_provider_link(customer=4, provider=1)
        engine.invalidate(g)
        assert engine.path(g, 4, 1) == (4, 1)

    def test_invalidate_unknown_graph_is_noop(self):
        engine = RoutingEngine()
        engine.invalidate(diamond())
        assert engine.stats().entries == 0

    def test_clear_drops_entries_keeps_counters(self, tiny_graph):
        engine = RoutingEngine()
        engine.outcome(tiny_graph, [10])
        engine.clear()
        stats = engine.stats()
        assert stats.entries == 0
        assert stats.misses == 1
        engine.outcome(tiny_graph, [10])
        assert engine.stats().misses == 2


class TestEviction:
    def test_lru_eviction_bounds_entries(self, tiny_graph):
        engine = RoutingEngine(max_entries=3)
        for dst in (10, 11, 12, 13, 14):
            engine.outcome(tiny_graph, [dst])
        stats = engine.stats()
        assert stats.entries <= 3
        assert stats.evictions == 2
        # The most recent destination is still cached...
        engine.outcome(tiny_graph, [14])
        assert engine.stats().hits == 1
        # ...and the oldest was evicted (recomputed = another miss).
        engine.outcome(tiny_graph, [10])
        assert engine.stats().misses == 6

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RoutingEngine(max_entries=0)


class TestBatching:
    def test_paths_many_identical_to_per_pair_as_path(self):
        """Acceptance criterion: byte-identical answers on a seeded random
        topology, including unreachable (None) pairs."""
        g = generate_topology(
            TopologyConfig(num_ases=80, num_tier1=3, num_tier2=15, seed=7)
        )
        g.add_as(999)  # isolated: unreachable from/to everyone
        rng = random.Random(7)
        ases = sorted(g.ases)
        pairs = [(rng.choice(ases), rng.choice(ases)) for _ in range(60)]
        pairs += [(999, ases[0]), (ases[0], 999)]
        engine = RoutingEngine()
        batched = engine.paths_many(g, PathBatch.of(pairs)).mapping()
        assert set(batched) == set(pairs)
        for src, dst in pairs:
            assert batched[(src, dst)] == as_path(g, src, dst), (src, dst)

    def test_paths_many_groups_by_destination(self, tiny_graph):
        engine = RoutingEngine()
        pairs = [(s, 10) for s in range(20, 30)]
        engine.paths_many(tiny_graph, PathBatch.of(pairs))
        stats = engine.stats()
        # Ten pairs, one destination: one kernel run.
        assert stats.misses == 1
        assert stats.batches == 1

    def test_paths_many_reuses_cache_across_batches(self, tiny_graph):
        engine = RoutingEngine()
        pairs = [(20, 10), (21, 10), (22, 11)]
        engine.paths_many(tiny_graph, PathBatch.of(pairs))
        engine.paths_many(tiny_graph, PathBatch.of(pairs))
        stats = engine.stats()
        assert stats.misses == 2  # dst 10 and dst 11, first batch only
        assert stats.hits == 2

    def test_paths_many_parallel_matches_serial(self):
        g = generate_topology(
            TopologyConfig(num_ases=60, num_tier1=3, num_tier2=12, seed=5)
        )
        rng = random.Random(5)
        ases = sorted(g.ases)
        pairs = [(rng.choice(ases), rng.choice(ases)) for _ in range(40)]
        serial = RoutingEngine().paths_many(g, PathBatch.of(pairs))
        parallel_engine = RoutingEngine()
        parallel = parallel_engine.paths_many(
            g, PathBatch.of(pairs, workers=2, chunk_size=4)
        )
        assert parallel == serial
        assert parallel.mapping() == serial.mapping()
        assert parallel_engine.stats().parallel_batches == 1
        # The parallel batch warmed the cache like a serial one would.
        parallel_engine.paths_many(g, PathBatch.of(pairs))
        assert parallel_engine.stats().hits > 0

    def test_paths_many_empty(self, tiny_graph):
        result = RoutingEngine().paths_many(tiny_graph, PathBatch.of([]))
        assert len(result) == 0
        assert result.mapping() == {}

    def test_parallel_batch_accumulates_stage_timings(self):
        """Regression: the parallel branch used to add only wall-clock to
        compute_seconds and dropped the workers' per-stage timings, so
        --engine-stats breakdowns undercounted parallel batches."""
        g = generate_topology(
            TopologyConfig(num_ases=60, num_tier1=3, num_tier2=12, seed=5)
        )
        rng = random.Random(5)
        ases = sorted(g.ases)
        pairs = [(rng.choice(ases), rng.choice(ases)) for _ in range(40)]
        engine = RoutingEngine()
        engine.paths_many(g, PathBatch.of(pairs, workers=2, chunk_size=4))
        stats = engine.stats()
        assert stats.parallel_batches == 1
        assert set(stats.stage_seconds) == {"customer", "peer", "provider"}
        assert sum(stats.stage_seconds.values()) > 0.0
        # The stage totals must be within accounting of the serial run:
        # bounded by the total kernel seconds the engine recorded.
        assert sum(stats.stage_seconds.values()) <= stats.compute_seconds

    def test_serial_misses_computed_in_sorted_order(self, tiny_graph):
        """Regression: the serial branch used to follow dict-insertion
        order while the parallel branch sorted, so obs streams and cache
        stores depended on the ``workers`` setting."""
        engine = RoutingEngine()
        seen = []
        real = engine._compute_many_raw

        def spy(graph, seeds_list, *args, **kwargs):
            seen.append([tuple(sorted(seeds)) for seeds in seeds_list])
            return real(graph, seeds_list, *args, **kwargs)

        engine._compute_many_raw = spy
        engine.paths_many(tiny_graph, PathBatch.of([(40, 12), (40, 10), (40, 11)]))
        assert seen == [[(10,), (11,), (12,)]]


class TestOutcomesMany:
    def test_matches_outcome_loop(self, tiny_graph):
        specs = [[10], [11], (10, 20)]
        batch = RoutingEngine().outcomes_many(tiny_graph, OutcomeBatch.of(specs))
        loop = [RoutingEngine().outcome(tiny_graph, spec) for spec in specs]
        assert len(batch) == len(specs)
        for got, want in zip(batch, loop):
            assert dict(got.items()) == dict(want.items())

    def test_batch_warms_cache_like_loop(self, tiny_graph):
        engine = RoutingEngine()
        batch = engine.outcomes_many(tiny_graph, OutcomeBatch.of([[10], [11]]))
        assert engine.stats().misses == 2
        # Per-origin keys: the serial path now hits.
        assert engine.outcome(tiny_graph, [10]) is batch[0]
        assert engine.outcome(tiny_graph, [11]) is batch[1]
        assert engine.stats().hits == 2

    def test_loop_warms_cache_for_batch(self, tiny_graph):
        engine = RoutingEngine()
        warm = engine.outcome(tiny_graph, [10])
        results = engine.outcomes_many(tiny_graph, OutcomeBatch.of([[10], [11]]))
        assert results[0] is warm
        stats = engine.stats()
        assert stats.hits == 1
        assert stats.misses == 2  # the serial miss plus origin 11

    def test_per_row_and_shared_targets(self, tiny_graph):
        engine = RoutingEngine()
        shared = engine.outcomes_many(
            tiny_graph, OutcomeBatch.of([[10], [11]], targets=frozenset({59}))
        )
        per_row = RoutingEngine().outcomes_many(
            tiny_graph,
            OutcomeBatch.of([[10], [11]], targets=[frozenset({59}), None]),
        )
        assert shared[0].path(59) == per_row[0].path(59)
        with pytest.raises(ValueError, match="targets sequence"):
            engine.outcomes_many(
                tiny_graph, OutcomeBatch.of([[10]], targets=[None, None])
            )

    def test_excluded_links_keyed_per_origin(self, tiny_graph):
        engine = RoutingEngine()
        link = frozenset({10, 11})
        batch = engine.outcomes_many(
            tiny_graph, OutcomeBatch.of([[10], [11]], excluded_links=[link])
        )
        assert engine.outcome(tiny_graph, [10], excluded_links=[link]) is batch[0]
        assert engine.outcome(tiny_graph, [10]) is not batch[0]

    def test_empty_batch(self, tiny_graph):
        result = RoutingEngine().outcomes_many(tiny_graph, OutcomeBatch.of([]))
        assert len(result) == 0

    def test_legacy_kernel_matches_fast(self, tiny_graph):
        specs = [[10], [11, 20]]
        fast = RoutingEngine(kernel="fast").outcomes_many(
            tiny_graph, OutcomeBatch.of(specs)
        )
        legacy = RoutingEngine(kernel="legacy").outcomes_many(
            tiny_graph, OutcomeBatch.of(specs)
        )
        for a, b in zip(fast, legacy):
            assert dict(a.items()) == dict(b.items())


class TestStats:
    def test_format_mentions_counters(self, tiny_graph):
        engine = RoutingEngine()
        engine.outcome(tiny_graph, [10])
        engine.outcome(tiny_graph, [10])
        text = engine.stats().format()
        assert "2 queries" in text
        assert "1 hits" in text
        assert "customer" in text

    def test_stage_seconds_accumulate(self, tiny_graph):
        engine = RoutingEngine()
        engine.outcome(tiny_graph, [10])
        stages = engine.stats().stage_seconds
        assert set(stages) == {"customer", "peer", "provider"}
        assert all(secs >= 0.0 for secs in stages.values())


class TestKernelSelection:
    def test_fast_is_default(self):
        assert RoutingEngine().kernel == "fast"

    def test_legacy_escape_hatch(self, tiny_graph):
        from repro.asgraph import CompactOutcome, RoutingOutcome

        legacy = RoutingEngine(kernel="legacy")
        fast = RoutingEngine(kernel="fast")
        a = legacy.outcome(tiny_graph, [10, 20])
        b = fast.outcome(tiny_graph, [10, 20])
        assert isinstance(a, RoutingOutcome)
        assert isinstance(b, CompactOutcome)
        assert dict(a.items()) == dict(b.items())

    def test_env_variable_selects_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "legacy")
        assert RoutingEngine().kernel == "legacy"
        # An explicit argument still wins over the environment.
        assert RoutingEngine(kernel="fast").kernel == "fast"
        monkeypatch.setenv("REPRO_KERNEL", "turbo")
        with pytest.raises(ValueError):
            RoutingEngine()

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            RoutingEngine(kernel="turbo")

    def test_both_kernels_batch_identically(self, tiny_graph):
        pairs = [(s, d) for s in (40, 50, 59) for d in (10, 11)]
        assert RoutingEngine(kernel="fast").paths_many(
            tiny_graph, PathBatch.of(pairs)
        ) == RoutingEngine(kernel="legacy").paths_many(
            tiny_graph, PathBatch.of(pairs)
        )


class TestSharedEngine:
    def test_singleton_until_replaced(self):
        original = shared_engine()
        try:
            assert shared_engine() is original
            mine = RoutingEngine(max_entries=8)
            set_shared_engine(mine)
            assert shared_engine() is mine
            set_shared_engine(None)
            fresh = shared_engine()
            assert fresh is not mine
        finally:
            set_shared_engine(original)

    def test_migrated_callers_share_the_engine(self, tiny_graph):
        from repro.core.temporal import static_guard_exposure

        engine = RoutingEngine()
        original = shared_engine()
        try:
            set_shared_engine(engine)
            first = static_guard_exposure(tiny_graph, 59, [10, 11])
            second = static_guard_exposure(tiny_graph, 59, [10, 11])
        finally:
            set_shared_engine(original)
        assert first == second
        assert engine.stats().hits >= 1


class TestDeprecatedBatchSignatures:
    """The legacy loose-argument batch forms still work, loudly."""

    def test_legacy_paths_many_warns_and_returns_dict(self, tiny_graph):
        engine = RoutingEngine()
        pairs = [(40, 10), (50, 11)]
        with pytest.warns(DeprecationWarning, match="PathBatch"):
            legacy = engine.paths_many(tiny_graph, pairs)
        assert isinstance(legacy, dict)
        typed = RoutingEngine().paths_many(tiny_graph, PathBatch.of(pairs))
        assert legacy == typed.mapping()

    def test_legacy_outcomes_many_warns_and_returns_list(self, tiny_graph):
        engine = RoutingEngine()
        with pytest.warns(DeprecationWarning, match="OutcomeBatch"):
            legacy = engine.outcomes_many(tiny_graph, [[10], [11]])
        assert isinstance(legacy, list)
        typed = RoutingEngine().outcomes_many(
            tiny_graph, OutcomeBatch.of([[10], [11]])
        )
        for a, b in zip(legacy, typed):
            assert dict(a.items()) == dict(b.items())

    def test_typed_forms_do_not_warn(self, tiny_graph, recwarn):
        engine = RoutingEngine()
        engine.paths_many(tiny_graph, PathBatch.of([(40, 10)]))
        engine.outcomes_many(tiny_graph, OutcomeBatch.of([[10]]))
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]


class TestSessionContextManager:
    """`with engine.session(...) as s:` guarantees release()."""

    @pytest.mark.parametrize("incremental", [True, False])
    def test_releases_on_clean_exit(self, tiny_graph, incremental):
        engine = RoutingEngine()
        with engine.session(tiny_graph, [10], incremental=incremental) as s:
            assert s.path(59) == as_path(tiny_graph, 59, 10)
            assert not s.released
        assert s.released

    @pytest.mark.parametrize("incremental", [True, False])
    def test_releases_when_body_raises(self, tiny_graph, incremental):
        engine = RoutingEngine()
        with pytest.raises(RuntimeError, match="boom"):
            with engine.session(tiny_graph, [10], incremental=incremental) as s:
                raise RuntimeError("boom")
        assert s.released

    def test_released_session_cannot_reenter(self, tiny_graph):
        engine = RoutingEngine()
        session = engine.session(tiny_graph, [10])
        session.release()
        with pytest.raises(RuntimeError, match="released"):
            with session:
                pass  # pragma: no cover
