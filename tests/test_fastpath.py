"""Equivalence and regression tests for the flat-array routing kernel.

The fast kernel must be invisible: outcome-for-outcome identical to the
legacy kernel for every combination of origins, forged announced paths,
excluded links, export scopes and early-exit targets.  The property test
sweeps randomly generated Internets through randomly drawn query shapes;
the unit tests pin the lazy :class:`CompactOutcome` materialisation, the
tiebreak order, and the :class:`GraphIndex` compilation cache.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.asgraph import (
    ASGraph,
    CompactOutcome,
    RouteKind,
    TopologyConfig,
    compute_routes,
    compute_routes_fast,
    generate_topology,
)
from repro.asgraph.index import GraphIndex, graph_index


def diamond() -> ASGraph:
    g = ASGraph()
    g.add_peer_link(1, 2)
    g.add_provider_link(customer=3, provider=1)
    g.add_provider_link(customer=3, provider=2)
    g.add_provider_link(customer=4, provider=3)
    return g


def assert_outcomes_equal(legacy, fast, origins=()):
    """Every piece of the RoutingOutcome API must agree between kernels."""
    assert dict(legacy.items()) == dict(fast.items())
    assert legacy.origins == fast.origins
    assert legacy.reachable_ases() == fast.reachable_ases()
    assert len(legacy) == len(fast)
    for origin in origins:
        assert legacy.capture_set(origin) == fast.capture_set(origin)
        assert legacy.capture_set_via(origin) == fast.capture_set_via(origin)


class TestEquivalenceProperty:
    @settings(deadline=None, max_examples=40)
    @given(st.integers(min_value=0, max_value=10_000), st.randoms(use_true_random=False))
    def test_random_queries_match_legacy(self, seed, rng):
        """Random topologies x random origins / forged paths / excluded
        links / export scopes / targets: fast == legacy, outcome for
        outcome."""
        g = generate_topology(
            TopologyConfig(num_ases=90, num_tier1=3, num_tier2=15, seed=seed)
        )
        ases = sorted(g.ases)

        origins = {}
        for asn in rng.sample(ases, rng.randint(1, 3)):
            if rng.random() < 0.3:
                # Forged announcement: prepend self to a fake tail.
                tail = [a for a in rng.sample(ases, rng.randint(1, 3)) if a != asn]
                origins[asn] = tuple([asn] + tail)
            else:
                origins[asn] = (asn,)

        excluded = None
        if rng.random() < 0.5:
            links = [frozenset((a, b)) for a, b, _ in g.links()]
            excluded = rng.sample(links, min(len(links), rng.randint(1, 6)))

        scopes = None
        if rng.random() < 0.4:
            scoped = rng.choice(sorted(origins))
            nbrs = sorted(g.neighbours(scoped))
            if nbrs:
                scopes = {
                    scoped: frozenset(rng.sample(nbrs, rng.randint(1, len(nbrs))))
                }

        targets = None
        if rng.random() < 0.5:
            targets = frozenset(rng.sample(ases, rng.randint(1, 5)))

        kwargs = dict(
            excluded_links=excluded,
            origin_export_scopes=scopes,
            targets=targets,
        )
        legacy = compute_routes(g, origins, **kwargs)
        fast = compute_routes_fast(g, origins, **kwargs)
        assert_outcomes_equal(legacy, fast, origins=origins)
        for asn in ases:
            assert legacy.path(asn) == fast.path(asn)

    @settings(deadline=None, max_examples=15)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=89),
        st.integers(min_value=0, max_value=89),
    )
    def test_targeted_queries_are_exact(self, seed, src, dst):
        """The fast kernel's early exit must still finalise targets exactly."""
        g = generate_topology(
            TopologyConfig(num_ases=90, num_tier1=3, num_tier2=15, seed=seed)
        )
        full = compute_routes_fast(g, [dst])
        targeted = compute_routes_fast(g, [dst], targets=frozenset((src,)))
        assert targeted.path(src) == full.path(src)
        assert full.path(src) == compute_routes(g, [dst]).path(src)


class TestEquivalenceEdgeCases:
    def test_forged_origin_loop_prevention(self):
        """The victim (and any AS on the forged tail) rejects the forged
        announcement, exactly as in the legacy kernel."""
        g = diamond()
        origins = {3: (3,), 4: (4, 3)}
        legacy = compute_routes(g, origins)
        fast = compute_routes_fast(g, origins)
        assert_outcomes_equal(legacy, fast, origins=[3, 4])
        assert fast.route(3).kind is RouteKind.ORIGIN
        assert fast.capture_set_via(4) == legacy.capture_set_via(4)

    def test_forged_tail_outside_topology(self):
        g = diamond()
        origins = {4: (4, 999)}  # forged origin AS999 does not exist
        legacy = compute_routes(g, origins)
        fast = compute_routes_fast(g, origins)
        assert_outcomes_equal(legacy, fast, origins=[4])
        assert fast.capture_set(999) == legacy.capture_set(999)

    def test_unknown_target_disables_early_exit(self):
        """A target outside the topology can never be routed, so both
        kernels fall back to the full computation."""
        g = diamond()
        legacy = compute_routes(g, [1], targets=frozenset({4, 999}))
        fast = compute_routes_fast(g, [1], targets=frozenset({4, 999}))
        assert_outcomes_equal(legacy, fast)
        assert fast.reachable_ases() == g.ases

    def test_excluded_link_detour(self):
        g = diamond()
        out = compute_routes_fast(g, [1], excluded_links=[frozenset({3, 1})])
        assert out.path(4) == (4, 3, 2, 1)

    def test_origin_scope_restricts_first_hop(self):
        g = ASGraph()
        g.add_provider_link(customer=10, provider=2)
        g.add_provider_link(customer=10, provider=3)
        g.add_provider_link(customer=2, provider=1)
        g.add_provider_link(customer=3, provider=1)
        out = compute_routes_fast(g, [10], origin_export_scopes={10: frozenset({3})})
        assert out.path(2) == (2, 1, 3, 10)
        assert out.path(1) == (1, 3, 10)

    def test_input_validation_matches_legacy(self):
        g = diamond()
        with pytest.raises(ValueError):
            compute_routes_fast(g, [])
        with pytest.raises(ValueError):
            compute_routes_fast(g, [999])
        with pytest.raises(ValueError):
            compute_routes_fast(g, {4: (3, 4)})
        with pytest.raises(ValueError):
            compute_routes_fast(g, [3], origin_export_scopes={4: frozenset({3})})

    def test_stage_timings_stamped_like_legacy(self):
        g = diamond()
        timings = {}
        compute_routes_fast(g, [4], stage_timings=timings)
        assert set(timings) == {"customer", "peer", "provider"}
        before = dict(timings)
        compute_routes_fast(g, [4], stage_timings=timings)
        assert all(timings[k] >= before[k] for k in before)


class TestTiebreak:
    def test_lowest_next_hop_among_equal_lengths(self):
        g = ASGraph()
        g.add_provider_link(customer=10, provider=5)
        g.add_provider_link(customer=10, provider=3)
        g.add_provider_link(customer=5, provider=1)
        g.add_provider_link(customer=3, provider=1)
        out = compute_routes_fast(g, [10])
        # both candidates have length 3; next hops 3 < 5
        assert out.path(1) == (1, 3, 10)

    def test_shorter_path_beats_lower_next_hop(self):
        g = ASGraph()
        g.add_provider_link(customer=10, provider=9)
        g.add_provider_link(customer=9, provider=1)  # (1, 9, 10): len 3
        g.add_provider_link(customer=10, provider=2)
        g.add_provider_link(customer=2, provider=3)
        g.add_provider_link(customer=3, provider=1)  # (1, 3, 2, 10): len 4
        out = compute_routes_fast(g, [10])
        assert out.path(1) == (1, 9, 10)

    def test_peer_stage_tiebreak(self):
        g = ASGraph()
        g.add_provider_link(customer=9, provider=7)
        g.add_provider_link(customer=9, provider=5)
        g.add_peer_link(7, 2)
        g.add_peer_link(5, 2)
        out = compute_routes_fast(g, [9])
        legacy = compute_routes(g, [9])
        # AS2 hears (2,7,9) and (2,5,9): lowest next hop 5 wins.
        assert out.path(2) == legacy.path(2) == (2, 5, 9)


class TestCompactOutcome:
    def test_paths_materialise_lazily_and_memoise(self, tiny_graph):
        out = compute_routes_fast(tiny_graph, [10])
        assert isinstance(out, CompactOutcome)
        assert out._paths == {}  # nothing materialised yet
        p = out.path(59)
        assert p is not None and p[0] == 59 and p[-1] == 10
        assert out.path(59) is out.path(59)  # memoised tuple
        # Materialising one path fills in its predecessor chain only.
        assert len(out._paths) <= len(p) + 1
        assert len(out._paths) < len(out)

    def test_route_objects_match_legacy(self, tiny_graph):
        legacy = compute_routes(tiny_graph, [10, 20])
        fast = compute_routes_fast(tiny_graph, [10, 20])
        for asn, route in legacy.items():
            got = fast.route(asn)
            assert got == route
            assert got.kind is route.kind
            assert got.origin == route.origin
            assert got.next_hop == route.next_hop

    def test_capture_sets_without_materialisation(self, tiny_graph):
        fast = compute_routes_fast(tiny_graph, [10, 20])
        legacy = compute_routes(tiny_graph, [10, 20])
        assert fast.capture_set(10) == legacy.capture_set(10)
        assert fast.capture_set(20) == legacy.capture_set(20)
        # Capture sets resolve from seed ids/parent pointers, not paths.
        assert fast._paths == {}

    def test_ases_on_path_and_missing_as(self, tiny_graph):
        fast = compute_routes_fast(tiny_graph, [10])
        legacy = compute_routes(tiny_graph, [10])
        assert fast.ases_on_path(59) == legacy.ases_on_path(59)
        assert fast.path(424242) is None
        assert fast.route(424242) is None
        assert fast.ases_on_path(424242) == frozenset()

    def test_rebind_index_requires_same_ases(self, tiny_graph):
        out = compute_routes_fast(tiny_graph, [10])
        out.rebind_index(graph_index(tiny_graph))  # same snapshot: fine
        with pytest.raises(ValueError):
            out.rebind_index(graph_index(diamond()))


class TestGraphIndex:
    def test_dense_order_is_asn_order(self, tiny_graph):
        gi = graph_index(tiny_graph)
        assert gi.asns == sorted(tiny_graph.ases)
        assert all(gi.idx[asn] == i for i, asn in enumerate(gi.asns))

    def test_csr_rows_match_neighbour_sets(self, tiny_graph):
        gi = graph_index(tiny_graph)
        for asn in tiny_graph.ases:
            i = gi.idx[asn]
            row = {gi.asns[j] for j in gi.prov_adj[gi.prov_start[i]:gi.prov_start[i + 1]]}
            assert row == tiny_graph.providers(asn)
            row = {gi.asns[j] for j in gi.cust_adj[gi.cust_start[i]:gi.cust_start[i + 1]]}
            assert row == tiny_graph.customers(asn)
            row = {gi.asns[j] for j in gi.peer_adj[gi.peer_start[i]:gi.peer_start[i + 1]]}
            assert row == tiny_graph.peers(asn)

    def test_cached_per_graph_until_mutation(self):
        g = diamond()
        first = graph_index(g)
        assert graph_index(g) is first
        g.add_provider_link(customer=5, provider=4)
        second = graph_index(g)
        assert second is not first
        assert 5 in second.idx and 5 not in first.idx

    def test_remove_link_invalidates(self):
        g = diamond()
        first = graph_index(g)
        g.remove_link(4, 3)
        assert graph_index(g) is not first

    def test_copy_gets_its_own_index(self):
        g = diamond()
        gi = graph_index(g)
        clone = g.copy()
        assert graph_index(clone) is not gi
        assert graph_index(clone).asns == gi.asns

    def test_pickle_roundtrip(self):
        import pickle

        g = diamond()
        gi = graph_index(g)
        clone = pickle.loads(pickle.dumps(gi))
        assert isinstance(clone, GraphIndex)
        assert clone.asns == gi.asns
        assert clone.prov_adj == gi.prov_adj

    def test_outcome_pickle_roundtrip(self):
        import pickle

        g = diamond()
        out = compute_routes_fast(g, [1])
        clone = pickle.loads(pickle.dumps(out))
        assert dict(clone.items()) == dict(out.items())


class TestLegacyEarlyExitFixes:
    """The satellite fixes to the legacy kernel keep target routes exact."""

    def test_stage2_targets_first_skips_frontier(self):
        """When the remaining targets are all served by the peer stage, the
        rest of the peer frontier is skipped (those ASes stay unrouted)."""
        g = ASGraph()
        g.add_provider_link(customer=9, provider=1)
        g.add_peer_link(1, 2)  # target 2 served by the peer stage
        g.add_peer_link(1, 7)  # 7 would be served too -- skipped
        for kernel in (compute_routes, compute_routes_fast):
            out = kernel(g, [9], targets=frozenset({2}))
            assert out.path(2) == (2, 1, 9)
            assert out.path(7) is None

    def test_stage2_frontier_still_built_when_targets_remain(self):
        """A target only reachable in stage 3 still sees peer routes as
        stage-3 sources: skipping the frontier must not corrupt its path."""
        g = ASGraph()
        g.add_provider_link(customer=9, provider=1)
        g.add_peer_link(1, 2)
        g.add_provider_link(customer=3, provider=2)  # 3 needs 2's peer route
        for kernel in (compute_routes, compute_routes_fast):
            full = kernel(g, [9])
            targeted = kernel(g, [9], targets=frozenset({3}))
            assert targeted.path(3) == full.path(3) == (3, 2, 1, 9)

    @settings(deadline=None, max_examples=20)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=89),
        st.integers(min_value=0, max_value=89),
    )
    def test_targeted_legacy_answers_unchanged(self, seed, src, dst):
        g = generate_topology(
            TopologyConfig(num_ases=90, num_tier1=3, num_tier2=15, seed=seed)
        )
        full = compute_routes(g, [dst])
        targeted = compute_routes(g, [dst], targets=frozenset((src,)))
        assert targeted.path(src) == full.path(src)

    def test_multi_target_sweep(self):
        rng = random.Random(11)
        g = generate_topology(
            TopologyConfig(num_ases=90, num_tier1=3, num_tier2=15, seed=11)
        )
        ases = sorted(g.ases)
        dst = rng.choice(ases)
        targets = frozenset(rng.sample(ases, 8))
        full = compute_routes(g, [dst])
        for kernel in (compute_routes, compute_routes_fast):
            targeted = kernel(g, [dst], targets=targets)
            for t in targets:
                assert targeted.path(t) == full.path(t)
