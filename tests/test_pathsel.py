"""Tests for bandwidth-weighted path selection and guard management."""

import random
from collections import Counter

import pytest

from repro.tor.circuit import Circuit
from repro.tor.consensus import Consensus, Position
from repro.tor.pathsel import GuardManager, PathConstraints, PathSelector, weighted_choice
from repro.tor.relay import Flag, Relay

DAY = 86_400.0


def relay(fp, flags=(), bw=1000, address="10.0.0.1", family=()):
    return Relay(
        fingerprint=fp,
        nickname=f"nick{fp}",
        address=address,
        or_port=9001,
        bandwidth=bw,
        flags=frozenset(set(flags) | {Flag.RUNNING, Flag.VALID}),
        family=frozenset(family),
    )


def build_consensus(n_guards=6, n_exits=6, n_middle=8):
    relays = []
    for i in range(n_guards):
        relays.append(relay(f"G{i}", {Flag.GUARD}, bw=(i + 1) * 100, address=f"10.{i}.0.1"))
    for i in range(n_exits):
        relays.append(relay(f"E{i}", {Flag.EXIT}, bw=(i + 1) * 100, address=f"11.{i}.0.1"))
    for i in range(n_middle):
        relays.append(relay(f"M{i}", (), bw=(i + 1) * 100, address=f"12.{i}.0.1"))
    return Consensus(relays)


class TestWeightedChoice:
    def test_proportionality(self):
        rng = random.Random(0)
        relays = [relay("A", bw=100), relay("B", bw=300, address="10.1.0.1")]
        counts = Counter()
        for _ in range(4000):
            counts[weighted_choice(rng, relays, lambda r: r.bandwidth).fingerprint] += 1
        ratio = counts["B"] / counts["A"]
        assert 2.4 < ratio < 3.7  # expect ~3.0

    def test_zero_weights_yield_none(self):
        rng = random.Random(0)
        assert weighted_choice(rng, [relay("A")], lambda r: 0.0) is None
        assert weighted_choice(rng, [], lambda r: 1.0) is None

    def test_negative_weights_treated_as_zero(self):
        rng = random.Random(0)
        relays = [relay("A"), relay("B", address="10.1.0.1")]
        chosen = {weighted_choice(rng, relays, lambda r: -1 if r.fingerprint == "A" else 1).fingerprint for _ in range(50)}
        assert chosen == {"B"}


class TestCircuit:
    def test_requires_distinct_relays(self):
        g = relay("G", {Flag.GUARD})
        with pytest.raises(ValueError):
            Circuit(guard=g, middle=g, exit=relay("E", {Flag.EXIT}, address="10.2.0.1"))

    def test_constraints_slash16(self):
        c = Circuit(
            guard=relay("G", {Flag.GUARD}, address="10.0.1.1"),
            middle=relay("M", address="10.0.2.1"),  # same /16 as guard
            exit=relay("E", {Flag.EXIT}, address="11.0.0.1"),
        )
        assert not c.obeys_constraints()

    def test_constraints_family(self):
        c = Circuit(
            guard=relay("G", {Flag.GUARD}, address="10.0.0.1", family={"E"}),
            middle=relay("M", address="11.0.0.1"),
            exit=relay("E", {Flag.EXIT}, address="12.0.0.1"),
        )
        assert not c.obeys_constraints()

    def test_valid_circuit(self):
        c = Circuit(
            guard=relay("G", {Flag.GUARD}, address="10.0.0.1"),
            middle=relay("M", address="11.0.0.1"),
            exit=relay("E", {Flag.EXIT}, address="12.0.0.1"),
        )
        assert c.obeys_constraints()
        assert "nickG" in c.describe()


class TestPathSelector:
    def test_builds_valid_circuits(self):
        consensus = build_consensus()
        selector = PathSelector(consensus, random.Random(1))
        for _ in range(30):
            circuit = selector.build_circuit()
            assert circuit is not None
            assert circuit.guard.is_guard
            assert circuit.exit.is_exit
            assert circuit.obeys_constraints()

    def test_respects_pinned_guard(self):
        consensus = build_consensus()
        selector = PathSelector(consensus, random.Random(1))
        guard = consensus.relay("G3")
        for _ in range(10):
            circuit = selector.build_circuit(guard=guard)
            assert circuit.guard.fingerprint == "G3"

    def test_selection_probability_tracks_bandwidth(self):
        consensus = build_consensus()
        selector = PathSelector(consensus, random.Random(7))
        counts = Counter()
        for _ in range(3000):
            counts[selector.pick(Position.EXIT).fingerprint] += 1
        # E5 has 6x the bandwidth of E0
        assert counts["E5"] > 3 * counts["E0"]

    def test_pick_honours_exclusions(self):
        consensus = build_consensus()
        selector = PathSelector(consensus, random.Random(1))
        guard = consensus.relay("G0")
        for _ in range(20):
            chosen = selector.pick(Position.GUARD, exclude=[guard])
            assert chosen.fingerprint != "G0"

    def test_custom_circuit_filter(self):
        consensus = build_consensus()
        constraints = PathConstraints(circuit_filter=lambda c: c.exit.fingerprint == "E5")
        selector = PathSelector(consensus, random.Random(1), constraints)
        circuit = selector.build_circuit()
        assert circuit is not None and circuit.exit.fingerprint == "E5"

    def test_impossible_filter_returns_none(self):
        consensus = build_consensus()
        constraints = PathConstraints(circuit_filter=lambda c: False)
        selector = PathSelector(consensus, random.Random(1), constraints, max_attempts=5)
        assert selector.build_circuit() is None


class TestGuardManager:
    def test_fixed_guard_set(self):
        consensus = build_consensus()
        mgr = GuardManager(consensus, random.Random(3), num_guards=3)
        guards = mgr.guards
        assert len(guards) == 3
        assert all(g.is_guard for g in guards)
        # stable within the rotation period
        assert [g.fingerprint for g in mgr.current_guards(now=DAY)] == [
            g.fingerprint for g in guards
        ]

    def test_rotation_replaces_guards(self):
        consensus = build_consensus()
        mgr = GuardManager(consensus, random.Random(3), num_guards=3, rotation_days=30)
        before = {g.fingerprint for g in mgr.guards}
        after = {g.fingerprint for g in mgr.current_guards(now=61 * DAY)}
        assert len(after) == 3
        assert after != before  # every guard has expired by 2x rotation

    def test_nine_month_guards_survive_a_month(self):
        consensus = build_consensus()
        mgr = GuardManager(consensus, random.Random(3), num_guards=1, rotation_days=270)
        before = [g.fingerprint for g in mgr.guards]
        assert [g.fingerprint for g in mgr.current_guards(now=31 * DAY)] == before

    def test_pick_guard_round_robins_within_set(self):
        consensus = build_consensus()
        mgr = GuardManager(consensus, random.Random(3), num_guards=3)
        picks = {mgr.pick_guard(now=0.0).fingerprint for _ in range(60)}
        assert picks == {g.fingerprint for g in mgr.guards}

    def test_validation(self):
        consensus = build_consensus()
        with pytest.raises(ValueError):
            GuardManager(consensus, random.Random(0), num_guards=0)
        with pytest.raises(ValueError):
            GuardManager(consensus, random.Random(0), rotation_days=0)

    def test_guard_selection_is_bandwidth_biased(self):
        consensus = build_consensus()
        counts = Counter()
        for seed in range(300):
            mgr = GuardManager(consensus, random.Random(seed), num_guards=1)
            counts[mgr.guards[0].fingerprint] += 1
        assert counts["G5"] > counts["G0"]
