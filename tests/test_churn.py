"""Tests for consensus churn and guard survival."""

import pytest

from repro.tor.churn import ChurnConfig, evolve_consensus, guard_survival


@pytest.fixture(scope="module")
def series(small_scenario):
    return evolve_consensus(
        small_scenario.consensus, days=20, config=ChurnConfig(seed=3)
    )


class TestEvolveConsensus:
    def test_series_length_and_timestamps(self, series):
        assert len(series) == 20
        for day, consensus in enumerate(series):
            assert consensus.valid_after == pytest.approx(day * 86_400.0)

    def test_population_roughly_stable(self, series):
        sizes = [len(c) for c in series]
        assert 0.8 * sizes[0] <= sizes[-1] <= 1.2 * sizes[0]

    def test_some_relays_die_and_join(self, series):
        first = {r.fingerprint for r in series[0].relays}
        last = {r.fingerprint for r in series[-1].relays}
        assert first - last, "no relay ever left"
        assert last - first, "no relay ever joined"
        assert any(fp.startswith("NEW") for fp in last - first)

    def test_bandwidths_drift(self, series):
        common = list(
            {r.fingerprint for r in series[0].relays}
            & {r.fingerprint for r in series[-1].relays}
        )[:50]
        changed = sum(
            1
            for fp in common
            if series[0].relay(fp).bandwidth != series[-1].relay(fp).bandwidth
        )
        assert changed > len(common) // 2

    def test_flags_preserved_through_drift(self, series):
        for fp in list({r.fingerprint for r in series[0].relays} & {r.fingerprint for r in series[-1].relays})[:20]:
            assert series[0].relay(fp).flags == series[-1].relay(fp).flags

    def test_deterministic(self, small_scenario):
        a = evolve_consensus(small_scenario.consensus, 5, ChurnConfig(seed=9))
        b = evolve_consensus(small_scenario.consensus, 5, ChurnConfig(seed=9))
        assert a[-1].to_text() == b[-1].to_text()

    def test_validation(self, small_scenario):
        with pytest.raises(ValueError):
            evolve_consensus(small_scenario.consensus, 0)
        with pytest.raises(ValueError):
            ChurnConfig(daily_death_rate=1.0)
        with pytest.raises(ValueError):
            ChurnConfig(bandwidth_drift_sigma=-1)


class TestGuardSurvival:
    def test_original_guards_decay_monotonically(self, series):
        survival = guard_survival(series, seed=1)
        counts = survival.original_guards_alive
        assert len(counts) == len(series)
        assert counts[0] == 3
        assert all(a >= b for a, b in zip(counts, counts[1:])) or True
        # (a replaced guard cannot come back as "original")
        assert counts[-1] <= counts[0]

    def test_replacement_grows_distinct_guard_count(self, small_scenario):
        """Heavier churn => the client touches more distinct guards —
        entry-point exposure beyond anything BGP does."""
        calm = evolve_consensus(
            small_scenario.consensus, 25, ChurnConfig(daily_death_rate=0.0, daily_birth_rate=0.0, seed=2)
        )
        stormy = evolve_consensus(
            small_scenario.consensus, 25, ChurnConfig(daily_death_rate=0.15, daily_birth_rate=0.15, seed=2)
        )
        calm_guards = guard_survival(calm, seed=4).distinct_guards_used
        stormy_guards = guard_survival(stormy, seed=4).distinct_guards_used
        assert calm_guards == 3
        assert stormy_guards > calm_guards

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            guard_survival([])
