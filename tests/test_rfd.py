"""Tests for the route-flap-damping stream transformer."""

import pytest

from repro.analysis.prefixes import Prefix
from repro.bgpsim.collector import StreamEvent, UpdateRecord
from repro.bgpsim.rfd import ExposureConsumer, RfdConfig, RfdFilter, VENDORS
from repro.bgpsim.stream import Window, iter_windows

P = Prefix.parse("10.0.0.0/24")
Q = Prefix.parse("10.1.0.0/24")
SESSION = ("rrc00", 42)


def ev(t, path, prefix=P, session=SESSION):
    return StreamEvent(
        session, UpdateRecord(t, prefix, tuple(path) if path is not None else None)
    )


def flap_burst(n, *, start=0.0, gap=10.0, prefix=P):
    """n announce/withdraw pairs in quick succession."""
    events = []
    t = start
    for i in range(n):
        events.append(ev(t, (42, 7, 1), prefix))
        t += gap
        events.append(ev(t, None, prefix))
        t += gap
    return events


class TestRfdConfig:
    def test_vendor_defaults(self):
        cisco, juniper = VENDORS["cisco"], VENDORS["juniper"]
        assert cisco.suppress_threshold < juniper.suppress_threshold
        assert cisco.readvertisement_penalty == 0.0
        assert juniper.readvertisement_penalty > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RfdConfig(vendor="x", half_life=0.0)
        with pytest.raises(ValueError):
            RfdConfig(vendor="x", reuse_threshold=3000.0, suppress_threshold=2000.0)

    def test_ceiling_enforces_max_suppress_time(self):
        cfg = VENDORS["cisco"]
        assert cfg.reuse_delay(cfg.ceiling) == pytest.approx(cfg.max_suppress_time)

    def test_reuse_delay_zero_below_threshold(self):
        cfg = VENDORS["cisco"]
        assert cfg.reuse_delay(cfg.reuse_threshold / 2) == 0.0


class TestRfdFilter:
    def test_calm_stream_passes_through(self):
        rfd = RfdFilter(VENDORS["cisco"])
        events = [ev(0.0, (42, 7, 1)), ev(7200.0, (42, 9, 1))]
        out = list(rfd.transform(events))
        assert [(e.time, e.record.as_path) for e in out] == [
            (0.0, (42, 7, 1)),
            (7200.0, (42, 9, 1)),
        ]
        assert rfd.suppressions == 0

    def test_flap_burst_suppressed_with_synthetic_withdrawal(self):
        rfd = RfdFilter(VENDORS["cisco"])
        events = flap_burst(4)
        out = list(rfd.transform(events, end=0.0))
        # The burst crosses the suppress threshold on the third withdrawal;
        # the downstream sees one synthetic withdrawal there and the tail of
        # the burst is absorbed entirely.
        assert out[-1].record.is_withdrawal
        assert len(out) < len(events)
        assert rfd.suppressions == 1
        assert rfd.suppressed_records > 0

    def test_release_reannounces_current_route(self):
        rfd = RfdFilter(VENDORS["cisco"])
        events = flap_burst(3)  # ends withdrawn at t=50
        events.append(ev(60.0, (42, 7, 1)))  # re-announce while suppressed
        out = list(rfd.transform(events, end=4 * 3600.0))
        release = out[-1]
        assert not release.record.is_withdrawal
        assert release.record.as_path == (42, 7, 1)
        assert release.time > 60.0
        # released strictly within the vendor's max suppress time
        assert release.time - 60.0 <= VENDORS["cisco"].max_suppress_time + 1e-6

    def test_release_skipped_if_route_withdrawn(self):
        rfd = RfdFilter(VENDORS["cisco"])
        events = flap_burst(3)  # last event is a withdrawal
        out = list(rfd.transform(events, end=4 * 3600.0))
        # downstream already saw the synthetic withdrawal; nothing to re-announce
        assert out[-1].record.is_withdrawal

    def test_keys_damped_independently(self):
        rfd = RfdFilter(VENDORS["cisco"])
        events = sorted(
            flap_burst(3, prefix=P) + [ev(5.0, (42, 9, 2), Q)],
            key=lambda e: e.time,
        )
        out = list(rfd.transform(events, end=0.0))
        q_events = [e for e in out if e.prefix == Q]
        assert len(q_events) == 1  # the calm prefix is untouched

    def test_vendor_defaults_diverge_on_flap_bursts(self):
        events = flap_burst(2)
        cisco = RfdFilter(VENDORS["cisco"])
        juniper = RfdFilter(VENDORS["juniper"])
        list(cisco.transform(events, end=0.0))
        list(juniper.transform(events, end=0.0))
        # Juniper's re-advertisement penalty (1000 vs 0) outweighs its
        # higher suppress threshold on announce/withdraw churn: two flap
        # pairs trip Juniper but leave Cisco just under 2000.
        assert cisco.suppressions == 0
        assert juniper.suppressions == 1

    def test_output_invariant_to_windowing(self):
        events = flap_burst(4) + [ev(300.0, (42, 8, 1)), ev(9000.0, (42, 8, 1))]
        events.sort(key=lambda e: e.time)

        whole = RfdFilter(VENDORS["cisco"])
        expected = list(whole.transform(events, end=10_000.0))

        windowed = RfdFilter(VENDORS["cisco"])
        out = []
        for window in iter_windows(events, window_seconds=500.0, duration=10_000.0):
            for event in window.events:
                out.extend(windowed.feed(event))
            out.extend(windowed.flush(window.end))
        assert [(e.time, e.session, e.record) for e in out] == [
            (e.time, e.session, e.record) for e in expected
        ]

    def test_state_roundtrip_mid_suppression(self):
        events = flap_burst(3)
        rfd = RfdFilter(VENDORS["cisco"])
        out_prefix = []
        for event in events:
            out_prefix.extend(rfd.feed(event))

        clone = RfdFilter(VENDORS["cisco"])
        clone.load_state(rfd.state_dict())

        tail = list(rfd.flush(4 * 3600.0))
        clone_tail = list(clone.flush(4 * 3600.0))
        assert [(e.time, e.record) for e in tail] == [
            (e.time, e.record) for e in clone_tail
        ]

    def test_state_vendor_mismatch_rejected(self):
        rfd = RfdFilter(VENDORS["cisco"])
        with pytest.raises(ValueError, match="vendor"):
            RfdFilter(VENDORS["juniper"]).load_state(rfd.state_dict())


def window_over(events, end, index=0):
    return Window(index=index, start=0.0, end=end, events=events)


class TestExposureConsumer:
    def test_counts_dwell_qualified_ases(self):
        consumer = ExposureConsumer([P], dwell_threshold=300.0)
        events = [ev(0.0, (42, 7, 1)), ev(100.0, (42, 9, 1))]
        consumer.consume(window_over(events, end=3600.0))
        # 42 and 1 dwell the whole hour; 7 only 100s, 9 from t=100 on
        assert consumer.samples == [(3600.0, 3)]
        assert {42, 1, 9} <= consumer.qualified
        assert 7 not in consumer.qualified

    def test_prefix_filter(self):
        consumer = ExposureConsumer([P], dwell_threshold=300.0)
        consumer.consume(window_over([ev(0.0, (42, 9, 2), Q)], end=3600.0))
        assert consumer.records == 0
        assert consumer.samples == [(3600.0, 0)]

    def test_rfd_reduces_observed_churn(self):
        events = flap_burst(4)
        plain = ExposureConsumer([P], dwell_threshold=300.0)
        plain.consume(window_over(list(events), end=3600.0))
        damped = ExposureConsumer(
            [P], dwell_threshold=300.0, rfd=RfdFilter(VENDORS["cisco"])
        )
        damped.consume(window_over(list(events), end=3600.0))
        assert damped.records < plain.records
        assert damped.rfd.suppressed_records > 0

    def test_state_roundtrip(self):
        events = flap_burst(3) + [ev(200.0, (42, 8, 1))]
        events.sort(key=lambda e: e.time)
        consumer = ExposureConsumer(
            [P], dwell_threshold=300.0, rfd=RfdFilter(VENDORS["cisco"])
        )
        consumer.consume(window_over(events, end=1800.0))

        clone = ExposureConsumer(
            [P], dwell_threshold=300.0, rfd=RfdFilter(VENDORS["cisco"])
        )
        clone.restore(consumer.state())
        assert clone.state() == consumer.state()

        tail = window_over([ev(7200.0, (42, 5, 1))], end=10_800.0, index=1)
        consumer.consume(tail)
        clone.consume(window_over([ev(7200.0, (42, 5, 1))], end=10_800.0, index=1))
        assert clone.state() == consumer.state()

    def test_restore_rfd_presence_mismatch(self):
        consumer = ExposureConsumer([P], rfd=RfdFilter(VENDORS["cisco"]))
        consumer.consume(window_over([], end=10.0))
        with pytest.raises(ValueError):
            ExposureConsumer([P]).restore(consumer.state())
        plain = ExposureConsumer([P])
        plain.consume(window_over([], end=10.0))
        with pytest.raises(ValueError):
            ExposureConsumer([P], rfd=RfdFilter(VENDORS["cisco"])).restore(
                plain.state()
            )
