"""Tests for §3.1 temporal exposure on crafted streams and the real trace."""

import pytest

from repro.analysis.prefixes import Prefix
from repro.bgpsim.collector import UpdateRecord, UpdateStream
from repro.core.temporal import (
    client_exposure,
    compromise_trajectory,
    exposure_over_time,
)

P = Prefix.parse("10.0.0.0/24")
Q = Prefix.parse("10.0.1.0/24")
HOUR = 3600.0
SESSION = ("observer", 42)


def stream(*records):
    return UpdateStream(
        SESSION,
        [UpdateRecord(t, p, tuple(path) if path else None) for t, p, path in records],
    )


class TestExposureOverTime:
    def test_monotone_growth(self):
        s = stream(
            (0, P, (42, 7, 1)),
            (2 * HOUR, P, (42, 8, 1)),
            (5 * HOUR, P, (42, 9, 6, 1)),
        )
        times = [HOUR * i for i in range(1, 10)]
        counts = exposure_over_time(s, P, times)
        assert counts == sorted(counts)
        assert counts[0] == 3  # 42, 7, 1 qualified after an hour
        assert counts[-1] == 6  # all of 42,7,8,9,6,1

    def test_dwell_threshold_delays_qualification(self):
        s = stream((0, P, (42, 7, 1)))
        counts = exposure_over_time(s, P, [60.0, 400.0], dwell_threshold=300.0)
        assert counts == [0, 3]

    def test_short_detour_never_qualifies(self):
        s = stream(
            (0, P, (42, 7, 1)),
            (HOUR, P, (42, 99, 1)),
            (HOUR + 60, P, (42, 7, 1)),
        )
        counts = exposure_over_time(s, P, [24 * HOUR])
        assert counts == [3]  # AS99's 60s never reach the 5-minute bar

    def test_unsorted_sample_times_handled(self):
        s = stream((0, P, (42, 1)))
        assert exposure_over_time(s, P, [2 * HOUR, HOUR]) == [2, 2]

    def test_negative_time_rejected(self):
        s = stream((0, P, (42, 1)))
        with pytest.raises(ValueError):
            exposure_over_time(s, P, [-1.0])

    def test_empty_timeline(self):
        s = stream((0, Q, (42, 1)))
        assert exposure_over_time(s, P, [HOUR]) == [0]


class TestClientExposure:
    def test_union_across_guard_prefixes(self, small_trace):
        trace, observers = small_trace
        client = observers[0]
        prefixes = sorted(trace.tor_prefixes, key=str)[:3]
        single = [
            client_exposure(trace, client, [p], num_samples=8).final_exposure
            for p in prefixes
        ]
        union = client_exposure(trace, client, prefixes, num_samples=8).final_exposure
        assert union <= sum(single)
        assert union >= max(single)

    def test_exposure_monotone_over_month(self, small_trace):
        trace, observers = small_trace
        client = observers[0]
        prefixes = sorted(trace.tor_prefixes, key=str)[:3]
        exposure = client_exposure(trace, client, prefixes, num_samples=16)
        xs = list(exposure.x_over_time)
        assert xs == sorted(xs)
        assert exposure.final_exposure >= 3  # at least one path's ASes

    def test_compromise_trajectory_matches_formula(self, small_trace):
        trace, observers = small_trace
        client = observers[0]
        prefixes = sorted(trace.tor_prefixes, key=str)[:2]
        exposure = client_exposure(trace, client, prefixes, num_samples=8)
        times, probs = compromise_trajectory(
            trace, client, prefixes, f=0.02, num_samples=8
        )
        assert list(times) == list(exposure.sample_times)
        for p, x in zip(probs, exposure.x_over_time):
            assert p == pytest.approx(1 - 0.98**x)

    def test_requires_guard_prefixes(self, small_trace):
        trace, observers = small_trace
        with pytest.raises(ValueError):
            client_exposure(trace, observers[0], [])

    def test_more_guards_mean_weakly_more_exposure(self, small_trace):
        """The paper's guard-amplification: more guard prefixes -> larger
        AS union -> higher compromise probability."""
        trace, observers = small_trace
        client = observers[0]
        prefixes = sorted(trace.tor_prefixes, key=str)[:6]
        one = client_exposure(trace, client, prefixes[:1], num_samples=4).final_exposure
        three = client_exposure(trace, client, prefixes[:3], num_samples=4).final_exposure
        six = client_exposure(trace, client, prefixes, num_samples=4).final_exposure
        assert one <= three <= six
