"""Tests for the convergence-exposure analysis (§3.1 convergence effect)."""

import pytest

from repro.analysis.prefixes import Prefix
from repro.asgraph import TopologyConfig, generate_topology
from repro.core.convergence import measure_convergence_exposure

P = Prefix.parse("10.0.0.0/24")


@pytest.fixture(scope="module")
def world():
    graph = generate_topology(TopologyConfig(num_ases=80, num_tier1=4, num_tier2=16, seed=4))
    # guard: a multi-homed stub; client: another stub
    guard = next(
        asn for asn in sorted(graph.stub_ases()) if len(graph.providers(asn)) >= 2
    )
    client = max(asn for asn in graph.stub_ases() if asn != guard)
    return graph, client, guard


class TestConvergenceExposure:
    def test_stable_observers_are_final_path(self, world):
        graph, client, guard = world
        exposure = measure_convergence_exposure(graph, client, guard, P, num_events=3, seed=1)
        assert client in exposure.stable_observers
        assert guard in exposure.stable_observers

    def test_transients_disjoint_from_stable(self, world):
        graph, client, guard = world
        exposure = measure_convergence_exposure(graph, client, guard, P, num_events=4, seed=2)
        assert not exposure.stable_observers & exposure.transient_observers
        assert set(exposure.transient_dwell) == set(exposure.transient_observers)

    def test_events_explore_paths(self, world):
        graph, client, guard = world
        exposure = measure_convergence_exposure(graph, client, guard, P, num_events=4, seed=2)
        assert exposure.paths_explored >= 2, "failures should move the path"

    def test_tor_usage_leak_superset_of_timing(self, world):
        """§3.1: convergence observers learn *Tor usage* even when they
        can't do timing analysis — the usage-leak set must dominate."""
        graph, client, guard = world
        exposure = measure_convergence_exposure(graph, client, guard, P, num_events=4, seed=3)
        assert exposure.timing_capable() <= exposure.learns_tor_usage()

    def test_transient_dwell_reflects_outage_length(self, world):
        """With short settle windows, pure transients dwell briefly; the
        alternate path used during an outage dwells for the outage span."""
        graph, client, guard = world
        exposure = measure_convergence_exposure(
            graph, client, guard, P, num_events=2, seed=4, settle_time=10.0
        )
        for dwell in exposure.transient_dwell.values():
            assert dwell > 0

    def test_validation(self, world):
        graph, client, guard = world
        with pytest.raises(ValueError):
            measure_convergence_exposure(graph, 10**9, guard, P)
        tier1 = sorted(graph.tier1_ases())[0]
        with pytest.raises(ValueError):
            measure_convergence_exposure(graph, client, tier1, P)  # no providers
