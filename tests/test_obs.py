"""Tests for the observability layer (repro.obs).

Covers the span-tree invariants (nesting, timing, error status), the
metrics registry semantics, the JSONL sink round-trip, recorder
installation/restoration, engine-stats absorption, the run manifest, and
a generous null-sink overhead bound.
"""

import io
import json
import time

import pytest

from repro import obs
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    NullSink,
    Recorder,
    RunManifest,
    SummarySink,
)


class TestSpans:
    def test_nesting_links_parent_and_child(self):
        rec = Recorder()
        with rec.span("outer") as outer:
            assert rec.current_span() is outer
            with rec.span("inner") as inner:
                assert rec.current_span() is inner
                assert inner.parent_id == outer.span_id
            assert rec.current_span() is outer
        assert rec.current_span() is None
        assert outer.parent_id is None
        assert inner.span_id != outer.span_id

    def test_sibling_spans_share_parent(self):
        rec = Recorder()
        with rec.span("root") as root:
            with rec.span("a") as a:
                pass
            with rec.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert a.span_id != b.span_id

    def test_timing_child_within_parent(self):
        rec = Recorder()
        with rec.span("outer") as outer:
            with rec.span("inner") as inner:
                time.sleep(0.01)
        assert inner.duration >= 0.01
        assert outer.duration >= inner.duration
        assert outer.start_time <= inner.start_time

    def test_exception_marks_error_status(self):
        rec = Recorder()
        with pytest.raises(ValueError):
            with rec.span("work") as span:
                raise ValueError("boom")
        assert span.status == "error"
        assert span.attrs["error"] == "ValueError"
        assert rec.current_span() is None  # stack unwound

    def test_counters_and_late_attrs_land_on_record(self):
        rec = Recorder()
        with rec.span("work", kind="demo") as span:
            span.add("updates", 3)
            span.add("updates", 2)
            span.set(targets=7)
        record = span.as_record()
        assert record["type"] == "span"
        assert record["name"] == "work"
        assert record["status"] == "ok"
        assert record["counters"] == {"updates": 5}
        assert record["attrs"] == {"kind": "demo", "targets": 7}

    def test_span_totals_aggregate_without_sinks(self):
        rec = Recorder()
        for _ in range(3):
            with rec.span("step"):
                pass
        totals = rec.span_totals()
        assert totals["step"]["count"] == 3
        assert totals["step"]["seconds"] >= 0.0


class TestMetrics:
    def test_counter_sums_deltas(self):
        reg = MetricsRegistry()
        reg.add("hits")
        reg.add("hits", 4)
        assert reg.snapshot().counters == {"hits": 5}

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("entries", 10)
        reg.gauge("entries", 3)
        assert reg.snapshot().gauges == {"entries": 3}

    def test_histogram_moments(self):
        reg = MetricsRegistry()
        for v in (4.0, 1.0, 7.0):
            reg.observe("fanout", v)
        hist = reg.snapshot().histograms["fanout"]
        assert hist.count == 3
        assert hist.total == 12.0
        assert hist.min == 1.0
        assert hist.max == 7.0
        assert hist.mean == 4.0

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.add("n")
        snap = reg.snapshot()
        reg.add("n")
        assert snap.counters == {"n": 1}
        assert reg.snapshot().counters == {"n": 2}

    def test_metrics_record_shape(self):
        reg = MetricsRegistry()
        reg.add("c")
        reg.gauge("g", 1.5)
        reg.observe("h", 2.0)
        record = reg.snapshot().as_record()
        assert record["type"] == "metrics"
        assert record["counters"] == {"c": 1}
        assert record["gauges"] == {"g": 1.5}
        assert record["histograms"]["h"]["mean"] == 2.0


class TestJsonlSink:
    def test_round_trip_span_tree(self):
        buf = io.StringIO()
        rec = Recorder(sinks=[JsonlSink(buf)])
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        rec.add("worked")
        rec.finish(RunManifest.collect(command="test", argv=["x"]))

        records = [json.loads(line) for line in buf.getvalue().splitlines()]
        # children are emitted on exit, so inner precedes outer
        assert [r["type"] for r in records] == [
            "span",
            "span",
            "metrics",
            "manifest",
        ]
        inner, outer = records[0], records[1]
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert records[2]["counters"] == {"worked": 1}
        assert records[3]["command"] == "test"

    def test_writes_file_and_counts_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(str(path))
        rec = Recorder(sinks=[sink])
        with rec.span("only"):
            pass
        rec.finish()
        assert sink.records_written == 2  # span + metrics snapshot
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["name"] == "only"

    def test_finish_is_idempotent(self):
        buf = io.StringIO()
        rec = Recorder(sinks=[JsonlSink(buf)])
        with rec.span("s"):
            pass
        rec.finish()
        rec.finish()
        types = [json.loads(l)["type"] for l in buf.getvalue().splitlines()]
        assert types.count("metrics") == 1


class TestSummarySink:
    def test_render_contains_spans_and_metrics(self):
        sink = SummarySink(io.StringIO())
        rec = Recorder(sinks=[sink])
        with rec.span("trace.run"):
            pass
        rec.add("trace.events.reset", 2)
        rec.observe("trace.reroute.updates", 5.0)
        rec.finish()
        text = sink.render()
        assert "obs summary" in text
        assert "trace.run" in text
        assert "trace.events.reset = 2" in text
        assert "trace.reroute.updates" in text


class TestActiveRecorder:
    def test_module_helpers_route_to_installed_recorder(self):
        rec = Recorder()
        previous = obs.set_recorder(rec)
        try:
            with obs.span("outer") as span:
                obs.add("counter", 2)
                obs.observe("hist", 1.0)
                obs.gauge("gauge", 9)
                assert rec.current_span() is span
            snap = rec.snapshot()
            assert snap.counters == {"counter": 2}
            assert snap.gauges == {"gauge": 9}
            assert rec.span_totals()["outer"]["count"] == 1
        finally:
            obs.set_recorder(previous)

    def test_set_recorder_none_restores_null_default(self):
        rec = Recorder()
        obs.set_recorder(rec)
        obs.set_recorder(None)
        assert obs.get_recorder() is not rec
        # the default recorder swallows instrumentation without sinks
        with obs.span("noop"):
            obs.add("ignored")


class TestAbsorbEngineStats:
    def test_duck_typed_absorption(self):
        class FakeStats:
            queries = 10
            hits = 7
            misses = 3
            evictions = 0
            entries = 4
            compute_seconds = 0.5
            batches = 2
            parallel_batches = 1
            hit_rate = 0.7
            stage_seconds = {"spread": 0.3, "finalize": 0.2}

        rec = Recorder()
        rec.absorb_engine_stats(FakeStats())
        gauges = rec.snapshot().gauges
        assert gauges["engine.queries"] == 10
        assert gauges["engine.hit_rate"] == 0.7
        assert gauges["engine.stage_seconds.spread"] == 0.3

    def test_real_engine_stats_shape(self):
        from repro.asgraph.engine import RoutingEngine
        from repro.asgraph.topology import ASGraph

        graph = ASGraph()
        graph.add_provider_link(customer=2, provider=1)
        engine = RoutingEngine()
        engine.outcome(graph, [2])
        rec = Recorder()
        rec.absorb_engine_stats(engine.stats())
        gauges = rec.snapshot().gauges
        assert gauges["engine.queries"] >= 1
        assert "engine.hit_rate" in gauges


class TestManifest:
    def test_collect_fills_environment(self):
        manifest = RunManifest.collect(
            command="trace", argv=["trace"], params={"seed": 3}
        )
        assert manifest.command == "trace"
        assert manifest.params == {"seed": 3}
        assert manifest.python_version
        assert manifest.package_version not in ("", "unknown")
        record = manifest.to_record()
        assert record["type"] == "manifest"

    def test_write_round_trips(self, tmp_path):
        path = tmp_path / "m.json"
        RunManifest.collect(command="info", argv=["info"]).write(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["command"] == "info"
        assert loaded["type"] == "manifest"


class TestNullSinkOverhead:
    def test_spans_are_cheap_without_sinks(self):
        """Regression guard: null-sink spans must stay micro-cheap.

        10k spans should take well under a second even on a loaded CI
        box (the real budget is ~2 µs/span; the bound is 100 µs/span).
        """
        rec = Recorder(sinks=[NullSink()])
        n = 10_000
        t0 = time.perf_counter()
        for _ in range(n):
            with rec.span("hot"):
                pass
        elapsed = time.perf_counter() - t0
        assert elapsed < n * 100e-6
        assert rec.span_totals()["hot"]["count"] == n
