"""Tests for IXP-level observation (Murdoch & Zieliński related work)."""

import pytest

from repro.asgraph import ASGraph
from repro.asgraph.ixp import IXP, IXPModel, assign_ixps
from repro.core.surveillance import SurveillanceModel


class TestIXP:
    def test_members_and_observation(self):
        ixp = IXP("x", frozenset({frozenset({1, 2}), frozenset({3, 4})}))
        assert ixp.members == {1, 2, 3, 4}
        assert ixp.observes_path((9, 1, 2, 7))
        assert not ixp.observes_path((9, 2, 5, 7))  # 2-5 not at the IXP
        assert not ixp.observes_path((1,))

    def test_model_rejects_duplicates(self):
        link = frozenset({1, 2})
        with pytest.raises(ValueError):
            IXPModel([IXP("a", frozenset({link})), IXP("b", frozenset({link}))])
        with pytest.raises(ValueError):
            IXPModel([IXP("a", frozenset()), IXP("a", frozenset())])

    def test_observers_of_path(self):
        model = IXPModel(
            [
                IXP("ams", frozenset({frozenset({1, 2})})),
                IXP("dec", frozenset({frozenset({3, 4})})),
            ]
        )
        assert model.observers_of_path((1, 2, 3, 4)) == {"ams", "dec"}
        assert model.observers_of_path((2, 3)) == frozenset()
        assert model.observers_of_path(None) == frozenset()
        assert model.ixp_of_link(2, 1) == "ams"
        assert model.ixp_of_link(9, 9) is None

    def test_circuit_observers_requires_both_ends(self):
        model = IXPModel(
            [
                IXP("ams", frozenset({frozenset({1, 2})})),
                IXP("dec", frozenset({frozenset({3, 4})})),
            ]
        )
        entry = [(0, 1, 2)]  # crosses ams
        exits = [(9, 3, 4)]  # crosses dec
        assert model.circuit_observers(entry, exits) == frozenset()
        exits_with_ams = [(9, 3, 4), (4, 2, 1)]  # reverse path crosses ams
        assert model.circuit_observers(entry, exits_with_ams) == {"ams"}


class TestAssignment:
    def test_partition_of_peering_links(self, tiny_graph):
        model = assign_ixps(tiny_graph, num_ixps=5, seed=1)
        from repro.asgraph.relationships import Relationship

        peer_links = {
            frozenset((a, b))
            for a, b, rel in tiny_graph.links()
            if rel is Relationship.PEER
        }
        assigned = {link for ixp in model.ixps for link in ixp.links}
        assert assigned == peer_links  # every peering link is at exactly one IXP

    def test_heavy_tail(self, tiny_graph):
        model = assign_ixps(tiny_graph, num_ixps=5, seed=1, zipf=1.5)
        sizes = sorted((len(ixp.links) for ixp in model.ixps), reverse=True)
        assert sizes[0] >= sizes[-1]

    def test_deterministic(self, tiny_graph):
        a = assign_ixps(tiny_graph, num_ixps=4, seed=9)
        b = assign_ixps(tiny_graph, num_ixps=4, seed=9)
        assert [(x.name, x.links) for x in a.ixps] == [(y.name, y.links) for y in b.ixps]

    def test_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            assign_ixps(tiny_graph, num_ixps=0)
        with pytest.raises(ValueError):
            assign_ixps(ASGraph(), num_ixps=3)


class TestIXPSurveillance:
    def test_some_circuit_is_ixp_observable(self, small_scenario):
        """On the generated Internet, at least some client→guard /
        exit→dest path combinations cross a common IXP — exchanges are a
        real observation surface, as the related work argues."""
        model = SurveillanceModel(small_scenario.graph)
        ixps = assign_ixps(small_scenario.graph, num_ixps=3, seed=2, zipf=1.2)
        clients = small_scenario.client_ases(6)
        dests = small_scenario.destination_ases(4)
        guards = [
            small_scenario.relay_asn(g.fingerprint)
            for g in small_scenario.consensus.guards()[:12]
        ]
        exits = [
            small_scenario.relay_asn(e.fingerprint)
            for e in small_scenario.consensus.exits()[:12]
        ]
        hits = 0
        for client in clients:
            for guard, exit_asn, dest in zip(guards, exits, dests * 3):
                entry = [model.path(client, guard), model.path(guard, client)]
                exit_paths = [model.path(exit_asn, dest), model.path(dest, exit_asn)]
                if ixps.circuit_observers(entry, exit_paths):
                    hits += 1
        assert hits > 0
