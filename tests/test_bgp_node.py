"""Unit tests for BGPNode: policy, origination, sessions, communities."""

import pytest

from repro.analysis.prefixes import Prefix
from repro.asgraph.relationships import Relationship
from repro.bgpsim.messages import NO_EXPORT, Announcement, UpdateMessage, Withdrawal
from repro.bgpsim.node import NO_EXPORT_TO_UPSTREAMS_VALUE, BGPNode

P = Prefix.parse("10.0.0.0/24")


def node_with(customer=(), peer=(), provider=()):
    rels = {}
    for asn in customer:
        rels[asn] = Relationship.CUSTOMER
    for asn in peer:
        rels[asn] = Relationship.PEER
    for asn in provider:
        rels[asn] = Relationship.PROVIDER
    return BGPNode(100, rels)


class TestOrigination:
    def test_originate_announces_to_everyone(self):
        n = node_with(customer=[1], peer=[2], provider=[3])
        outbox = n.originate(P)
        targets = {t for t, _m in outbox}
        assert targets == {1, 2, 3}
        for _t, msg in outbox:
            assert msg.payload.as_path == (100,)

    def test_scoped_origination(self):
        n = node_with(customer=[1], peer=[2], provider=[3])
        outbox = n.originate(P, to_neighbours=[3])
        assert {t for t, _m in outbox} == {3}

    def test_scope_must_be_neighbours(self):
        n = node_with(customer=[1])
        with pytest.raises(ValueError):
            n.originate(P, to_neighbours=[42])

    def test_withdraw_origin(self):
        n = node_with(customer=[1])
        n.originate(P)
        outbox = n.withdraw_origin(P)
        assert len(outbox) == 1
        assert outbox[0][1].is_withdrawal
        with pytest.raises(ValueError):
            n.withdraw_origin(P)

    def test_best_path_for_origin(self):
        n = node_with(customer=[1])
        n.originate(P)
        assert n.best_path(P) == (100,)


class TestImportPolicy:
    def test_loop_rejected_silently(self):
        n = node_with(provider=[3])
        outbox = n.receive(UpdateMessage(3, Announcement(P, (3, 100, 1))))
        assert outbox == []
        assert n.best_path(P) is None

    def test_unknown_sender_dropped(self):
        n = node_with(provider=[3])
        assert n.receive(UpdateMessage(42, Announcement(P, (42, 1)))) == []

    def test_accepts_and_selects(self):
        n = node_with(customer=[1], provider=[3])
        n.receive(UpdateMessage(3, Announcement(P, (3, 9))))
        assert n.best_path(P) == (100, 3, 9)
        # customer route replaces provider route
        n.receive(UpdateMessage(1, Announcement(P, (1, 9))))
        assert n.best_path(P) == (100, 1, 9)

    def test_withdrawal_falls_back(self):
        n = node_with(customer=[1], provider=[3])
        n.receive(UpdateMessage(3, Announcement(P, (3, 9))))
        n.receive(UpdateMessage(1, Announcement(P, (1, 9))))
        n.receive(UpdateMessage(1, Withdrawal(P)))
        assert n.best_path(P) == (100, 3, 9)

    def test_stale_withdrawal_ignored(self):
        n = node_with(provider=[3])
        assert n.receive(UpdateMessage(3, Withdrawal(P))) == []


class TestExportPolicy:
    def test_provider_route_only_to_customers(self):
        n = node_with(customer=[1], peer=[2], provider=[3])
        outbox = n.receive(UpdateMessage(3, Announcement(P, (3, 9))))
        assert {t for t, _m in outbox} == {1}

    def test_customer_route_to_everyone(self):
        n = node_with(customer=[1, 4], peer=[2], provider=[3])
        outbox = n.receive(UpdateMessage(1, Announcement(P, (1,))))
        assert {t for t, _m in outbox} == {2, 3, 4}

    def test_peer_route_only_to_customers(self):
        n = node_with(customer=[1], peer=[2], provider=[3])
        outbox = n.receive(UpdateMessage(2, Announcement(P, (2, 9))))
        assert {t for t, _m in outbox} == {1}

    def test_prepends_own_asn(self):
        n = node_with(customer=[1], provider=[3])
        outbox = n.receive(UpdateMessage(1, Announcement(P, (1,))))
        for _t, msg in outbox:
            assert msg.payload.as_path[0] == 100

    def test_no_duplicate_advertisement(self):
        n = node_with(customer=[1], provider=[3])
        n.receive(UpdateMessage(3, Announcement(P, (3, 9))))
        # same route again: no new messages
        outbox = n.receive(UpdateMessage(3, Announcement(P, (3, 9))))
        assert outbox == []

    def test_implicit_withdrawal_on_route_loss(self):
        n = node_with(customer=[1], provider=[3])
        n.receive(UpdateMessage(3, Announcement(P, (3, 9))))
        outbox = n.receive(UpdateMessage(3, Withdrawal(P)))
        assert [(t, m.is_withdrawal) for t, m in outbox] == [(1, True)]

    def test_poison_aware_skip(self):
        # route through neighbour 1 is never advertised back to 1's AS if
        # 1 already appears in the path
        n = node_with(customer=[1, 5], provider=[3])
        outbox = n.receive(UpdateMessage(3, Announcement(P, (3, 5, 9))))
        assert {t for t, _m in outbox} == {1}


class TestCommunities:
    def test_no_export_blocks_propagation(self):
        n = node_with(customer=[1], provider=[3])
        outbox = n.receive(
            UpdateMessage(3, Announcement(P, (3, 9), frozenset({NO_EXPORT})))
        )
        assert outbox == []
        assert n.best_path(P) == (100, 3, 9)  # still usable locally

    def test_targeted_no_export(self):
        comm = frozenset({(100, NO_EXPORT_TO_UPSTREAMS_VALUE)})
        n = node_with(customer=[1], provider=[3])
        outbox = n.receive(UpdateMessage(3, Announcement(P, (3, 9), comm)))
        assert outbox == []

    def test_other_as_targeted_community_ignored(self):
        comm = frozenset({(55, NO_EXPORT_TO_UPSTREAMS_VALUE)})
        n = node_with(customer=[1], provider=[3])
        outbox = n.receive(UpdateMessage(3, Announcement(P, (3, 9), comm)))
        assert {t for t, _m in outbox} == {1}


class TestSessions:
    def test_drop_neighbour_flushes_routes(self):
        n = node_with(customer=[1], provider=[3])
        n.receive(UpdateMessage(3, Announcement(P, (3, 9))))
        outbox = n.drop_neighbour(3)
        assert n.best_path(P) is None
        assert [(t, m.is_withdrawal) for t, m in outbox] == [(1, True)]
        with pytest.raises(ValueError):
            n.drop_neighbour(3)

    def test_add_neighbour_sends_table(self):
        n = node_with(customer=[1])
        n.originate(P)
        outbox = n.add_neighbour(7, Relationship.PEER)
        assert [(t, m.prefix) for t, m in outbox] == [(7, P)]
        with pytest.raises(ValueError):
            n.add_neighbour(7, Relationship.PEER)

    def test_session_reset_resends_full_table(self):
        n = node_with(customer=[1], provider=[3])
        n.receive(UpdateMessage(3, Announcement(P, (3, 9))))
        assert n.session_reset(1) != []  # artificial re-advertisement
        assert n.session_reset(1) != []  # and again after every reset
        with pytest.raises(ValueError):
            n.session_reset(42)
