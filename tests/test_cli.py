"""Smoke tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.cli.results import SCHEMA_VERSION


class TestCli:
    def test_info(self, capsys):
        assert main(["--seed", "3", "info"]) == 0
        out = capsys.readouterr().out
        assert "relays:" in out
        assert "tor prefixes:" in out

    def test_attack(self, capsys):
        assert main(["attack", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "surveillance coverage" in out
        assert "interception" in out

    def test_transfer(self, capsys):
        assert main(["transfer", "--size", "500000"]) == 0
        out = capsys.readouterr().out
        assert "correlations" in out
        assert "guard to client" in out

    def test_transfer_plot(self, capsys):
        assert main(["transfer", "--size", "500000", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2 (right)" in out
        assert "series:" in out

    def test_rov(self, capsys):
        assert main(["rov"]) == 0
        out = capsys.readouterr().out
        assert "ROV adoption" in out
        assert "forged origin" in out

    def test_users(self, capsys):
        assert main(["users", "--clients", "3", "--days", "4"]) == 0
        out = capsys.readouterr().out
        assert "users compromised" in out
        assert "median time to first compromise" in out

    def test_population(self, capsys):
        assert main([
            "population", "--users", "200", "--client-ases", "8",
            "--days", "5", "--circuits-per-day", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "200 users over 8 client ASes" in out
        assert "user-days/sec" in out
        assert "time to compromise" in out

    def test_population_json(self, capsys):
        assert main([
            "population", "--users", "150", "--days", "4", "--skew",
            "uniform", "--backend", "loop", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["command"] == "population"
        result = doc["result"]
        assert result["users"] == 150
        assert result["backend"] == "loop"
        assert result["skew"] == "uniform"
        assert len(result["fraction_compromised_by_day"]) == 4
        assert result["user_days_per_sec"] > 0
        assert {"q", "rate"} == set(result["compromise_rate_percentiles"][0])

    def test_resilience(self, capsys):
        assert main(["resilience", "--attackers", "10", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "resilience" in out
        assert "alpha" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            main(["--scale", "huge", "info"])


class TestJsonOutput:
    def test_info_json_schema(self, capsys):
        assert main(["--seed", "3", "info", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["command"] == "info"
        assert doc["seed"] == 3  # top-level flag survives the subparser
        assert doc["scale"] == "small"
        result = doc["result"]
        assert result["ases"]["total"] > 0
        assert result["relays"]["total"] > 0
        assert set(result["weights"]) == {"Wgg", "Wgd", "Wee", "Wed"}

    def test_trace_json_schema_and_obs_out(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        assert main(["trace", "--obs-out", str(out), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["command"] == "trace"
        result = doc["result"]
        assert result["sessions"] > 0
        assert result["records_after_reset_removal"] > 0
        assert 0.0 <= result["path_change_ratio"]["p_greater_1"] <= 1.0
        assert result["path_change_ratio"]["ccdf"]  # plottable points ride along

        records = [json.loads(line) for line in out.read_text().splitlines()]
        spans = [r for r in records if r["type"] == "span"]
        roots = [s for s in spans if s["parent"] is None]
        assert [s["name"] for s in roots] == ["cli.trace"]
        root = roots[0]
        children = {s["name"] for s in spans if s["parent"] == root["id"]}
        assert {"scenario.build", "trace.run", "trace.analysis"} <= children
        # every span nests inside its parent's window
        by_id = {s["id"]: s for s in spans}
        for s in spans:
            parent = by_id.get(s["parent"])
            if parent is not None:
                assert parent["start"] <= s["start"] + 1e-6
                assert (
                    s["start"] + s["duration"]
                    <= parent["start"] + parent["duration"] + 1e-6
                )
        assert records[-1]["type"] == "manifest"
        assert [r for r in records if r["type"] == "metrics"]

        manifest = json.loads((tmp_path / "run.jsonl.manifest.json").read_text())
        assert manifest["command"] == "trace"
        assert manifest["params"]["seed"] == 0
        assert manifest["wall_seconds"] > 0

    def test_trace_stream_json_schema(self, capsys):
        assert main(
            ["trace", "--stream", "--days", "2", "--rfd-vendor", "cisco", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["command"] == "trace-stream"
        result = doc["result"]
        assert result["duration_days"] == 2.0
        assert result["rfd_vendor"] == "cisco"
        assert result["replay"]["windows"] == 2
        assert result["replay"]["records"] > 0
        assert result["replay"]["peak_window_events"] > 0
        assert result["rfd"]["suppressed_records"] >= 0
        assert result["exposure"]["final_exposed_ases"] > 0
        assert len(result["exposure"]["curve"]) == 2

    def test_trace_stream_human_render(self, capsys):
        assert main(["trace", "--stream", "--days", "2"]) == 0
        out = capsys.readouterr().out
        assert "streamed 2 days" in out
        assert "RFD: off" in out
        assert "exposed ASes" in out

    def test_trace_stream_checkpoint_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "trace.ckpt")
        assert main(
            ["trace", "--stream", "--days", "2", "--checkpoint", ckpt, "--json"]
        ) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(
            [
                "trace",
                "--stream",
                "--days",
                "2",
                "--checkpoint",
                ckpt,
                "--resume",
                "--json",
            ]
        ) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["result"]["replay"]["resumed_windows"] == 2
        assert (
            second["result"]["exposure"]["curve"]
            == first["result"]["exposure"]["curve"]
        )

    def test_transfer_json(self, capsys):
        assert main(["transfer", "--size", "500000", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["command"] == "transfer"
        assert doc["result"]["bytes_delivered"] == 500000
        assert doc["result"]["correlations"]

    def test_resilience_json(self, capsys):
        assert main(["resilience", "--attackers", "10", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["command"] == "resilience"
        result = doc["result"]
        assert 0.0 <= result["resilience"]["mean"] <= 1.0
        assert result["top_guards"]
        assert result["selection_tradeoff"]


class TestRunnerFlags:
    def test_checkpoint_then_resume_identical(self, tmp_path, capsys):
        ckpt = str(tmp_path / "resilience.ckpt")
        args = ["resilience", "--attackers", "10", "--checkpoint", ckpt, "--json"]
        assert main(args + ["--jobs", "2"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(args + ["--resume"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["result"] == second["result"]

        from repro.persist import read_checkpoint

        header, records = read_checkpoint(ckpt)
        assert header["experiment"] == "resilience"
        assert len(records) == header["total_trials"]

    def test_jobs_match_serial(self, capsys):
        assert main(["resilience", "--attackers", "10", "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["resilience", "--attackers", "10", "--jobs", "2", "--json"]) == 0
        sharded = json.loads(capsys.readouterr().out)
        assert serial["result"] == sharded["result"]


class TestObsFlags:
    def test_obs_summary_prints_table(self, capsys):
        assert main(["info", "--obs-summary"]) == 0
        err = capsys.readouterr().err
        assert "obs summary" in err
        assert "scenario.build" in err
        assert "engine.queries" in err

    def test_engine_stats_alias_removed(self, capsys):
        # The deprecated --obs-summary alias is gone; argparse rejects it.
        with pytest.raises(SystemExit) as excinfo:
            main(["info", "--engine-stats"])
        assert excinfo.value.code == 2
        assert "--engine-stats" in capsys.readouterr().err

    def test_global_flags_accepted_before_subcommand(self, capsys):
        assert main(["--json", "--seed", "7", "info"]) == 0
        assert json.loads(capsys.readouterr().out)["seed"] == 7
