"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["--seed", "3", "info"]) == 0
        out = capsys.readouterr().out
        assert "relays:" in out
        assert "tor prefixes:" in out

    def test_attack(self, capsys):
        assert main(["attack", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "surveillance coverage" in out
        assert "interception" in out

    def test_transfer(self, capsys):
        assert main(["transfer", "--size", "500000"]) == 0
        out = capsys.readouterr().out
        assert "correlations" in out
        assert "guard to client" in out

    def test_transfer_plot(self, capsys):
        assert main(["transfer", "--size", "500000", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2 (right)" in out
        assert "series:" in out

    def test_rov(self, capsys):
        assert main(["rov"]) == 0
        out = capsys.readouterr().out
        assert "ROV adoption" in out
        assert "forged origin" in out

    def test_users(self, capsys):
        assert main(["users", "--clients", "3", "--days", "4"]) == 0
        out = capsys.readouterr().out
        assert "users compromised" in out
        assert "median time to first compromise" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            main(["--scale", "huge", "info"])
