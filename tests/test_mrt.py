"""Tests for the MRT-style stream serialization."""

import io

import pytest

from repro.analysis.prefixes import Prefix
from repro.bgpsim.collector import UpdateRecord, UpdateStream
from repro.bgpsim.mrt import dump_stream, dumps_stream, load_stream, loads_stream

P = Prefix.parse("10.0.0.0/24")
Q = Prefix.parse("10.1.0.0/16")


def sample_stream():
    return UpdateStream(
        ("rrc00", 42),
        [
            UpdateRecord(0.5, P, (42, 7, 1)),
            UpdateRecord(10.0, Q, (42, 9, 3)),
            UpdateRecord(20.25, P, None),
            UpdateRecord(30.0, P, (42, 8, 1), from_reset=True),
        ],
    )


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self):
        stream = sample_stream()
        parsed = loads_stream(dumps_stream(stream))
        assert parsed.session == stream.session
        assert len(parsed) == len(stream)
        for a, b in zip(parsed, stream):
            assert (a.time, a.prefix, a.as_path, a.from_reset) == (
                b.time,
                b.prefix,
                b.as_path,
                b.from_reset,
            )

    def test_file_roundtrip(self):
        stream = sample_stream()
        buffer = io.StringIO()
        dump_stream(stream, buffer)
        buffer.seek(0)
        parsed = load_stream(buffer)
        assert parsed.session == stream.session
        assert len(parsed) == len(stream)

    def test_trace_stream_roundtrip(self, small_trace):
        trace, _ = small_trace
        session = trace.collector_sessions[0]
        stream = trace.streams[session]
        parsed = loads_stream(dumps_stream(stream))
        assert len(parsed) == len(stream)
        assert parsed.prefixes() == stream.prefixes()
        # analyses agree on the round-tripped stream
        from repro.analysis.pathchanges import path_change_table
        assert path_change_table(parsed) == path_change_table(stream)


class TestFormat:
    def test_reset_flag_encoded(self):
        text = dumps_stream(sample_stream())
        assert "|R" in text
        assert text.startswith("session|rrc00|42")

    def test_comments_and_blanks_ignored(self):
        text = "# comment\n\nsession|rrc01|7\nA|1.000|10.0.0.0/24|7 1|\n"
        stream = loads_stream(text)
        assert stream.session == ("rrc01", 7)
        assert len(stream) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "A|1.0|10.0.0.0/24|7 1|\n",  # missing header
            "session|rrc00|42\nX|1.0|10.0.0.0/24\n",  # unknown kind
            "session|rrc00|42\nA|1.0|10.0.0.0/24|\n",  # missing fields
            "session|rrc00|42\nA|1.0|10.0.0.0/24||\n",  # empty path
            "session|rrc00\n",  # malformed header
            "session|rrc00|42\nW|1.0\n",  # malformed withdrawal
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            loads_stream(bad)
