"""Tests for the MRT-style stream serialization."""

import io

import pytest

from repro.analysis.prefixes import Prefix
from repro.bgpsim.collector import UpdateRecord, UpdateStream
from repro.bgpsim.mrt import (
    dump_stream,
    dumps_stream,
    iter_records,
    load_stream,
    loads_stream,
    write_records,
)

P = Prefix.parse("10.0.0.0/24")
Q = Prefix.parse("10.1.0.0/16")


def sample_stream():
    return UpdateStream(
        ("rrc00", 42),
        [
            UpdateRecord(0.5, P, (42, 7, 1)),
            UpdateRecord(10.0, Q, (42, 9, 3)),
            UpdateRecord(20.25, P, None),
            UpdateRecord(30.0, P, (42, 8, 1), from_reset=True),
        ],
    )


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self):
        stream = sample_stream()
        parsed = loads_stream(dumps_stream(stream))
        assert parsed.session == stream.session
        assert len(parsed) == len(stream)
        for a, b in zip(parsed, stream):
            assert (a.time, a.prefix, a.as_path, a.from_reset) == (
                b.time,
                b.prefix,
                b.as_path,
                b.from_reset,
            )

    def test_file_roundtrip(self):
        stream = sample_stream()
        buffer = io.StringIO()
        dump_stream(stream, buffer)
        buffer.seek(0)
        parsed = load_stream(buffer)
        assert parsed.session == stream.session
        assert len(parsed) == len(stream)

    def test_trace_stream_roundtrip(self, small_trace):
        trace, _ = small_trace
        session = trace.collector_sessions[0]
        stream = trace.streams[session]
        parsed = loads_stream(dumps_stream(stream))
        assert len(parsed) == len(stream)
        assert parsed.prefixes() == stream.prefixes()
        # analyses agree on the round-tripped stream
        from repro.analysis.pathchanges import path_change_table
        assert path_change_table(parsed) == path_change_table(stream)


class TestFormat:
    def test_reset_flag_encoded(self):
        text = dumps_stream(sample_stream())
        assert "|R" in text
        assert text.startswith("session|rrc00|42")

    def test_comments_and_blanks_ignored(self):
        text = "# comment\n\nsession|rrc01|7\nA|1.000|10.0.0.0/24|7 1|\n"
        stream = loads_stream(text)
        assert stream.session == ("rrc01", 7)
        assert len(stream) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "A|1.0|10.0.0.0/24|7 1|\n",  # missing header
            "session|rrc00|42\nX|1.0|10.0.0.0/24\n",  # unknown kind
            "session|rrc00|42\nA|1.0|10.0.0.0/24|\n",  # missing fields
            "session|rrc00|42\nA|1.0|10.0.0.0/24||\n",  # empty path
            "session|rrc00\n",  # malformed header
            "session|rrc00|42\nW|1.0\n",  # malformed withdrawal
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            loads_stream(bad)


def records_equal(a, b):
    return [(r.time, r.prefix, r.as_path, r.from_reset) for r in a] == [
        (r.time, r.prefix, r.as_path, r.from_reset) for r in b
    ]


class TestStreamingCodec:
    def test_write_iter_roundtrip(self):
        stream = sample_stream()
        buffer = io.StringIO()
        count = write_records(buffer, stream.session, iter(stream))
        assert count == len(stream)
        buffer.seek(0)
        source = iter_records(buffer)
        assert source.session == stream.session
        assert records_equal(list(source), stream)

    def test_source_is_one_shot(self):
        buffer = io.StringIO()
        write_records(buffer, ("rrc00", 42), sample_stream())
        buffer.seek(0)
        source = iter_records(buffer)
        list(source)
        with pytest.raises(RuntimeError, match="one-shot"):
            iter(source)

    def test_session_read_before_any_record(self):
        """The header parses eagerly so sources can be wired into a merge
        before paying for a single record line."""

        class Exploding(io.StringIO):
            def __init__(self):
                super().__init__("session|rrc02|9\nA|1.0|10.0.0.0/24|9 1|\n")
                self.lines = 0

            def __next__(self):
                self.lines += 1
                if self.lines > 1:
                    raise AssertionError("record line read too early")
                return super().__next__()

        fh = Exploding()
        source = iter_records(fh)
        assert source.session == ("rrc02", 9)

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError, match="no session header"):
            iter_records(io.StringIO(""))

    def test_torn_tail_dropped_when_tolerated(self):
        text = "session|rrc00|42\nA|1.0|10.0.0.0/24|42 1|\nA|2.0|10.0."
        records = list(iter_records(io.StringIO(text), tolerate_torn_tail=True))
        assert len(records) == 1
        assert records[0].time == 1.0

    def test_torn_tail_raises_by_default(self):
        text = "session|rrc00|42\nA|1.0|10.0.0.0/24|42 1|\nA|2.0|10.0."
        with pytest.raises(ValueError):
            list(iter_records(io.StringIO(text)))

    def test_mid_file_corruption_always_raises(self):
        """Corruption followed by an intact line is a damaged file, not a
        torn tail — recovery must not silently skip it."""
        text = (
            "session|rrc00|42\n"
            "A|1.0|10.0.0.0/24|42 1|\n"
            "garbage line\n"
            "A|3.0|10.0.0.0/24|42 9 1|\n"
        )
        with pytest.raises(ValueError):
            list(iter_records(io.StringIO(text), tolerate_torn_tail=True))

    def test_million_scale_constant_memory_shape(self):
        """Round-trip a large stream through a pipe of generators without
        ever materializing it (spot check: the reader yields lazily)."""
        n = 10_000
        session = ("rrc00", 42)
        prefix = Prefix.parse("10.0.0.0/24")

        def gen():
            for i in range(n):
                yield UpdateRecord(float(i), prefix, (42, i % 7 + 1))

        buffer = io.StringIO()
        assert write_records(buffer, session, gen()) == n
        buffer.seek(0)
        source = iter_records(buffer)
        it = iter(source)
        first = next(it)
        assert first.time == 0.0
        assert sum(1 for _ in it) == n - 1


class TestLegacyWrappers:
    def test_legacy_equivalent_to_streaming(self):
        stream = sample_stream()
        with pytest.warns(DeprecationWarning):
            text = dumps_stream(stream)
        buffer = io.StringIO()
        write_records(buffer, stream.session, stream)
        assert text == buffer.getvalue()
        with pytest.warns(DeprecationWarning):
            parsed = loads_stream(text)
        assert parsed.session == stream.session
        assert records_equal(parsed, stream)

    def test_file_wrappers_warn(self):
        stream = sample_stream()
        buffer = io.StringIO()
        with pytest.warns(DeprecationWarning):
            dump_stream(stream, buffer)
        buffer.seek(0)
        with pytest.warns(DeprecationWarning):
            parsed = load_stream(buffer)
        assert records_equal(parsed, stream)
