"""Tests for collector streams and the reset-artefact pipeline."""

import pytest

from repro.analysis.prefixes import Prefix
from repro.bgpsim.collector import (
    Collector,
    IterSource,
    UpdateRecord,
    UpdateStream,
    merge_sources,
    merge_streams,
)
from repro.bgpsim.resets import (
    ResetDetectionConfig,
    detect_resets,
    remove_reset_artifacts,
)

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")
P3 = Prefix.parse("10.0.2.0/24")
SESSION = ("rrc00", 42)


def rec(t, prefix, path, reset=False):
    return UpdateRecord(t, prefix, tuple(path) if path is not None else None, from_reset=reset)


class TestUpdateStream:
    def test_append_requires_order(self):
        s = UpdateStream(SESSION)
        s.append(rec(1.0, P1, (42, 1)))
        with pytest.raises(ValueError):
            s.append(rec(0.5, P1, (42, 1)))

    def test_constructor_sorts(self):
        s = UpdateStream(SESSION, [rec(2.0, P1, (42, 1)), rec(1.0, P1, (42, 9, 1))])
        assert [r.time for r in s] == [1.0, 2.0]

    def test_prefixes_and_records_for(self):
        s = UpdateStream(SESSION, [rec(1, P1, (42, 1)), rec(2, P2, (42, 2))])
        assert s.prefixes() == {P1, P2}
        assert len(s.records_for(P1)) == 1

    def test_path_timeline_collapses_duplicates(self):
        s = UpdateStream(
            SESSION,
            [
                rec(1, P1, (42, 1)),
                rec(2, P1, (42, 1)),  # re-announcement, same path
                rec(3, P1, (42, 9, 1)),
                rec(4, P1, None),  # withdrawal
                rec(5, P1, (42, 9, 1)),
            ],
        )
        timeline = s.path_timeline(P1)
        assert timeline == [
            (1, (42, 1)),
            (3, (42, 9, 1)),
            (4, None),
            (5, (42, 9, 1)),
        ]

    def test_filtered(self):
        s = UpdateStream(SESSION, [rec(1, P1, (42, 1)), rec(2, P2, (42, 2))])
        only_p1 = s.filtered(lambda r: r.prefix == P1)
        assert only_p1.prefixes() == {P1}
        assert only_p1.session == SESSION

    def test_collector_duplicate_peers_rejected(self):
        with pytest.raises(ValueError):
            Collector("rrc00", [1, 1])

    def test_merge_streams_rejects_duplicates(self):
        a = UpdateStream(SESSION)
        b = UpdateStream(SESSION)
        with pytest.raises(ValueError):
            merge_streams([a, b])


S_A = ("rrc00", 7)
S_B = ("rrc01", 9)


class TestMergeSources:
    def test_global_time_order(self):
        a = UpdateStream(S_A, [rec(1.0, P1, (7, 1)), rec(5.0, P1, (7, 9, 1))])
        b = UpdateStream(S_B, [rec(2.0, P2, (9, 2)), rec(4.0, P2, None)])
        merged = list(merge_sources([a, b]))
        assert [e.time for e in merged] == [1.0, 2.0, 4.0, 5.0]
        assert [e.session for e in merged] == [S_A, S_B, S_B, S_A]

    def test_tie_order_is_source_order(self):
        """Simultaneous updates across sessions merge in the order sources
        were passed in, then per-source record order — on every run."""
        a = UpdateStream(S_A, [rec(1.0, P1, (7, 1)), rec(1.0, P2, (7, 2))])
        b = UpdateStream(S_B, [rec(1.0, P1, (9, 1))])
        expected = [(S_A, P1), (S_A, P2), (S_B, P1)]
        for _ in range(5):
            merged = list(merge_sources([a, b]))
            assert [(e.session, e.prefix) for e in merged] == expected
        # reversing the source order reverses the tie order
        flipped = list(merge_sources([b, a]))
        assert [(e.session, e.prefix) for e in flipped] == [
            (S_B, P1),
            (S_A, P1),
            (S_A, P2),
        ]

    def test_accepts_generator_backed_sources(self):
        a = IterSource(S_A, (rec(t, P1, (7, 1, int(t))) for t in (1.0, 3.0)))
        b = IterSource(S_B, iter([rec(2.0, P2, (9, 2))]))
        merged = list(merge_sources([a, b]))
        assert [e.time for e in merged] == [1.0, 2.0, 3.0]

    def test_dedup_collapses_repeats_incrementally(self):
        a = UpdateStream(
            S_A,
            [
                rec(1.0, P1, (7, 1)),
                rec(2.0, P1, (7, 1)),  # same path: dropped
                rec(3.0, P1, (7, 9, 1)),
                rec(4.0, P1, None),
                rec(5.0, P1, None),  # repeated withdrawal: dropped
                rec(6.0, P1, (7, 9, 1)),
            ],
        )
        merged = list(merge_sources([a], dedup=True))
        assert [e.time for e in merged] == [1.0, 3.0, 4.0, 6.0]

    def test_dedup_is_per_session(self):
        a = UpdateStream(S_A, [rec(1.0, P1, (7, 1))])
        b = UpdateStream(S_B, [rec(2.0, P1, (7, 1))])  # same path, other session
        merged = list(merge_sources([a, b], dedup=True))
        assert len(merged) == 2

    def test_out_of_order_source_raises(self):
        bad = IterSource(S_A, iter([rec(5.0, P1, (7, 1)), rec(1.0, P1, (7, 1))]))
        with pytest.raises(ValueError, match="not time-ordered"):
            list(merge_sources([bad]))

    def test_merge_streams_materializes_sources(self):
        a = IterSource(S_A, iter([rec(1.0, P1, (7, 1))]))
        indexed = merge_streams([a])
        assert isinstance(indexed[S_A], UpdateStream)
        assert len(indexed[S_A]) == 1


def make_stream_with_reset(num_prefixes=20, reset_at=100.0):
    """Announcements at t~0, a genuine change at t=50, a table dump at
    ``reset_at`` re-announcing everything unchanged."""
    prefixes = [Prefix.parse(f"10.1.{i}.0/24") for i in range(num_prefixes)]
    records = []
    for i, p in enumerate(prefixes):
        records.append(rec(i * 0.01, p, (42, 7, i + 1000)))
    records.append(rec(50.0, prefixes[0], (42, 8, 1000)))  # genuine change
    for i, p in enumerate(prefixes):
        path = (42, 8, 1000) if i == 0 else (42, 7, i + 1000)
        records.append(rec(reset_at + i * 0.01, p, path, reset=True))
    return UpdateStream(SESSION, records), prefixes


class TestResetDetection:
    def test_detects_injected_dump(self):
        stream, _prefixes = make_stream_with_reset()
        resets = detect_resets(stream)
        assert len(resets) == 1
        assert resets[0].start >= 99.0

    def test_removes_only_unchanged_records(self):
        stream, prefixes = make_stream_with_reset()
        cleaned = remove_reset_artifacts(stream)
        # ground truth: every from_reset record was an unchanged repeat
        assert all(not r.from_reset for r in cleaned)
        # the genuine change at t=50 survives
        assert any(r.time == 50.0 for r in cleaned)
        # initial table survives
        assert len(cleaned) == len(prefixes) + 1

    def test_genuine_burst_of_changes_not_flagged(self):
        """A core-link failure rehoming many prefixes at once must NOT be
        classified as a session reset — the paths actually changed."""
        prefixes = [Prefix.parse(f"10.2.{i}.0/24") for i in range(20)]
        records = [rec(i * 0.01, p, (42, 7, i + 1000)) for i, p in enumerate(prefixes)]
        records += [
            rec(60.0 + i * 0.01, p, (42, 9, i + 1000)) for i, p in enumerate(prefixes)
        ]
        stream = UpdateStream(SESSION, records)
        assert detect_resets(stream) == []
        assert len(remove_reset_artifacts(stream)) == len(records)

    def test_small_bursts_ignored(self):
        records = [
            rec(0.0, P1, (42, 1)),
            rec(100.0, P1, (42, 1)),  # lone duplicate, not a table dump
        ]
        stream = UpdateStream(SESSION, records)
        assert detect_resets(stream) == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ResetDetectionConfig(burst_gap=0)
        with pytest.raises(ValueError):
            ResetDetectionConfig(min_table_fraction=0)
        with pytest.raises(ValueError):
            ResetDetectionConfig(min_unchanged_fraction=2)

    def test_trace_ground_truth_scoring(self, small_trace):
        """On the full synthetic trace, the detector must remove most
        reset artefacts while keeping nearly all genuine records."""
        trace, _observers = small_trace
        removed_reset = kept_reset = removed_genuine = kept_genuine = 0
        for session in trace.collector_sessions:
            stream = trace.streams[session]
            cleaned = remove_reset_artifacts(stream)
            kept_ids = {id(r) for r in cleaned}
            for record in stream:
                kept = id(record) in kept_ids
                if record.from_reset:
                    kept_reset += kept
                    removed_reset += not kept
                else:
                    kept_genuine += kept
                    removed_genuine += not kept
        total_reset = removed_reset + kept_reset
        total_genuine = removed_genuine + kept_genuine
        assert total_reset > 0, "trace should contain reset artefacts"
        assert removed_reset / total_reset > 0.8, "recall too low"
        assert removed_genuine / total_genuine < 0.05, "too many genuine drops"
