"""Tests for exposure and path-change analyses on crafted streams."""

import pytest

from repro.analysis.exposure import (
    ExposureConfig,
    as_dwell_times,
    extra_as_samples,
    prefix_exposure,
)
from repro.analysis.pathchanges import (
    count_path_changes,
    path_change_table,
    session_stats,
    tor_ratio_samples,
)
from repro.analysis.prefixes import Prefix
from repro.bgpsim.collector import UpdateRecord, UpdateStream

P = Prefix.parse("10.0.0.0/24")
Q = Prefix.parse("10.0.1.0/24")
SESSION = ("rrc00", 42)
HOUR = 3600.0


def stream(*records):
    return UpdateStream(SESSION, [UpdateRecord(t, p, tuple(path) if path else None) for t, p, path in records])


class TestPathChanges:
    def test_counts_as_set_changes(self):
        s = stream(
            (0, P, (42, 7, 1)),
            (10, P, (42, 8, 1)),  # change 1
            (20, P, (42, 8, 1)),  # same -> no change
            (30, P, (42, 7, 1)),  # change 2
        )
        assert count_path_changes(s, P) == 2

    def test_prepending_does_not_count(self):
        """AS-path (42,7,7,1) crosses the same AS *set* as (42,7,1)."""
        s = stream((0, P, (42, 7, 1)), (10, P, (42, 7, 7, 1)))
        assert count_path_changes(s, P) == 0

    def test_withdrawal_then_same_path_does_not_count(self):
        s = stream((0, P, (42, 7, 1)), (10, P, None), (20, P, (42, 7, 1)))
        assert count_path_changes(s, P) == 0

    def test_withdrawal_then_new_path_counts_once(self):
        s = stream((0, P, (42, 7, 1)), (10, P, None), (20, P, (42, 9, 1)))
        assert count_path_changes(s, P) == 1

    def test_first_announcement_is_not_a_change(self):
        assert count_path_changes(stream((0, P, (42, 1))), P) == 0

    def test_table_matches_per_prefix_counts(self):
        s = stream(
            (0, P, (42, 7, 1)),
            (1, Q, (42, 5, 2)),
            (2, P, (42, 8, 1)),
            (3, Q, (42, 5, 2)),
        )
        table = path_change_table(s)
        assert table == {P: 1, Q: 0}
        assert table[P] == count_path_changes(s, P)

    def test_session_stats_median_and_ratio(self):
        records = []
        # 5 background prefixes with 2 changes each; P with 10 changes
        for i in range(5):
            bg = Prefix.parse(f"20.0.{i}.0/24")
            records += [(j * 10 + i, bg, (42, 100 + j % 3, 1)) for j in range(3)]
        records += [(1000 + j, P, (42, 200 + j, 1)) for j in range(11)]
        s = UpdateStream(SESSION, [UpdateRecord(t, p, tuple(a)) for t, p, a in sorted(records)])
        stats = session_stats(s)
        assert stats.median == 2
        assert stats.ratio(P) == 5.0
        assert stats.ratio(Prefix.parse("30.0.0.0/24")) is None

    def test_tor_ratio_samples_skips_zero_median_sessions(self):
        quiet = stream((0, P, (42, 1)), (1, Q, (42, 2)))
        assert tor_ratio_samples([quiet], frozenset({P})) == []


class TestDwellTimes:
    def test_accumulates_per_as(self):
        s = stream(
            (0, P, (42, 7, 1)),
            (1 * HOUR, P, (42, 8, 1)),
            (3 * HOUR, P, (42, 7, 1)),
        )
        dwell = as_dwell_times(s, P, horizon=10 * HOUR)
        assert dwell[42] == pytest.approx(10 * HOUR)
        assert dwell[1] == pytest.approx(10 * HOUR)
        assert dwell[7] == pytest.approx(8 * HOUR)
        assert dwell[8] == pytest.approx(2 * HOUR)

    def test_withdrawn_time_counts_for_nobody(self):
        s = stream((0, P, (42, 1)), (HOUR, P, None), (2 * HOUR, P, (42, 1)))
        dwell = as_dwell_times(s, P, horizon=3 * HOUR)
        assert dwell[42] == pytest.approx(2 * HOUR)


class TestPrefixExposure:
    def test_baseline_excluded_from_extras(self):
        s = stream(
            (0, P, (42, 7, 1)),
            (HOUR, P, (42, 8, 9, 1)),
        )
        exposure = prefix_exposure(s, P, horizon=24 * HOUR)
        assert exposure.baseline_ases == {42, 7, 1}
        assert exposure.extra_ases == {8, 9}
        assert exposure.num_extra == 2
        assert exposure.total_ases == 5

    def test_dwell_filter_drops_transients(self):
        """An AS on-path for under 5 minutes is ignored — the paper's
        'to be fair' rule that excludes convergence transients."""
        s = stream(
            (0, P, (42, 7, 1)),
            (HOUR, P, (42, 99, 1)),       # transient detour
            (HOUR + 60, P, (42, 7, 1)),   # back after 60s < 5 min
        )
        exposure = prefix_exposure(s, P, horizon=24 * HOUR)
        assert 99 not in exposure.extra_ases
        assert 99 in exposure.extra_ases_unfiltered

    def test_dwell_filter_total_mode_accumulates(self):
        """Four 2-minute detours through AS99 total 8 min >= 5 min."""
        records = [(0, P, (42, 7, 1))]
        t = HOUR
        for _ in range(4):
            records.append((t, P, (42, 99, 1)))
            records.append((t + 120, P, (42, 7, 1)))
            t += HOUR
        exposure = prefix_exposure(stream(*records), P, horizon=24 * HOUR)
        assert 99 in exposure.extra_ases

    def test_dwell_filter_interval_mode_does_not(self):
        records = [(0, P, (42, 7, 1))]
        t = HOUR
        for _ in range(4):
            records.append((t, P, (42, 99, 1)))
            records.append((t + 120, P, (42, 7, 1)))
            t += HOUR
        exposure = prefix_exposure(
            stream(*records), P, horizon=24 * HOUR, config=ExposureConfig(mode="interval")
        )
        assert 99 not in exposure.extra_ases

    def test_interval_mode_keeps_long_single_interval(self):
        s = stream((0, P, (42, 7, 1)), (HOUR, P, (42, 99, 1)), (2 * HOUR, P, (42, 7, 1)))
        exposure = prefix_exposure(
            s, P, horizon=24 * HOUR, config=ExposureConfig(mode="interval")
        )
        assert 99 in exposure.extra_ases

    def test_never_announced_returns_none(self):
        s = stream((0, Q, (42, 1)))
        assert prefix_exposure(s, P, horizon=HOUR) is None

    def test_withdrawal_only_prefix_returns_none(self):
        s = stream((0, P, None))
        assert prefix_exposure(s, P, horizon=HOUR) is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExposureConfig(dwell_threshold=-1)
        with pytest.raises(ValueError):
            ExposureConfig(mode="weird")

    def test_extra_as_samples_only_counts_carried_prefixes(self):
        s = stream((0, P, (42, 7, 1)), (HOUR, P, (42, 8, 1)))
        samples = extra_as_samples([s], frozenset({P, Q}), horizon=24 * HOUR)
        assert samples == [1]


class TestHorizonClamping:
    """Regression: dwell past the measurement horizon must contribute
    nothing, in both accounting modes (the §4 window is the month)."""

    def test_interval_closing_past_horizon_is_clamped(self):
        """AS99 appears 100s before the horizon and leaves 400s after it:
        only 100s fall inside the window, under the 300s threshold.  The
        unclamped accounting credited the full 500s and qualified it."""
        horizon = 10 * HOUR
        s = stream(
            (0, P, (42, 7, 1)),
            (horizon - 100, P, (42, 99, 1)),
            (horizon + 400, P, (42, 7, 1)),
        )
        exposure = prefix_exposure(
            s, P, horizon=horizon, config=ExposureConfig(mode="interval")
        )
        assert 99 not in exposure.extra_ases

    def test_interval_mode_matches_total_mode_at_boundary(self):
        """With single-interval ASes the two modes must agree, including
        on a timeline whose last update falls after the horizon."""
        horizon = 10 * HOUR
        s = stream(
            (0, P, (42, 7, 1)),
            (horizon - 400, P, (42, 98, 1)),   # 400s in-window: qualifies
            (horizon + 50, P, (42, 99, 1)),    # entirely past horizon
            (horizon + 500, P, (42, 7, 1)),
        )
        for mode in ("total", "interval"):
            exposure = prefix_exposure(
                s, P, horizon=horizon, config=ExposureConfig(mode=mode)
            )
            assert 98 in exposure.extra_ases, mode
            assert 99 not in exposure.extra_ases, mode

    def test_open_interval_clamped_at_horizon(self):
        """An AS still on-path when the window ends gets horizon - since,
        not infinite credit."""
        horizon = HOUR
        s = stream((0, P, (42, 7, 1)), (horizon - 100, P, (42, 99, 1)))
        exposure = prefix_exposure(
            s, P, horizon=horizon, config=ExposureConfig(mode="interval")
        )
        assert 99 not in exposure.extra_ases

    def test_in_window_interval_still_qualifies(self):
        horizon = 10 * HOUR
        s = stream(
            (0, P, (42, 7, 1)),
            (HOUR, P, (42, 99, 1)),
            (2 * HOUR, P, (42, 7, 1)),
        )
        exposure = prefix_exposure(
            s, P, horizon=horizon, config=ExposureConfig(mode="interval")
        )
        assert 99 in exposure.extra_ases
