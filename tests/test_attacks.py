"""Tests for prefix hijack / interception / stealth attacks (§3.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asgraph import ASGraph, TopologyConfig, compute_routes, generate_topology
from repro.bgpsim.attacks import (
    AttackKind,
    simulate_community_scoped_hijack,
    simulate_hijack,
    simulate_interception,
)


@pytest.fixture(scope="module")
def graph():
    return generate_topology(TopologyConfig(num_ases=120, num_tier1=4, num_tier2=25, seed=9))


class TestSamePrefixHijack:
    def test_capture_set_contains_attacker_not_victim(self, graph):
        result = simulate_hijack(graph, victim=100, attacker=50)
        assert result.captures(50)
        assert not result.captures(100)
        assert 0 < result.capture_fraction < 1

    def test_capture_partition(self, graph):
        result = simulate_hijack(graph, victim=100, attacker=50)
        outcome = compute_routes(graph, [100, 50])
        assert result.capture_set | outcome.capture_set(100) == graph.ases

    def test_stub_attackers_are_surprisingly_effective(self, graph):
        """Counterintuitive but correct under Gao-Rexford preferences: a
        stub attacker's announcement climbs its provider chain as a
        *customer* route, which every AS prefers over peer/provider routes
        regardless of length — so stubs often out-capture tier-1 attackers
        (the Goldberg et al. 'How secure are secure interdomain routing
        protocols' observation).  Both must capture something, though."""
        stub = max(graph.stub_ases())
        stub_wins = tier1_wins = 0
        for victim in sorted(graph.stub_ases())[:20]:
            if victim in (0, stub):
                continue
            tier1_frac = simulate_hijack(graph, victim, 0).capture_fraction
            stub_frac = simulate_hijack(graph, victim, stub).capture_fraction
            assert tier1_frac > 0 and stub_frac > 0
            if stub_frac > tier1_frac:
                stub_wins += 1
            elif tier1_frac > stub_frac:
                tier1_wins += 1
        assert stub_wins >= tier1_wins

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            simulate_hijack(graph, victim=100, attacker=100)
        with pytest.raises(ValueError):
            simulate_hijack(graph, victim=10**9, attacker=100)


class TestMoreSpecificHijack:
    def test_captures_everyone(self, graph):
        result = simulate_hijack(graph, 100, 50, AttackKind.MORE_SPECIFIC)
        assert result.capture_fraction == 1.0
        assert result.captures(100)  # even the victim follows the /25

    def test_dominates_same_prefix(self, graph):
        same = simulate_hijack(graph, 100, 50, AttackKind.SAME_PREFIX)
        more = simulate_hijack(graph, 100, 50, AttackKind.MORE_SPECIFIC)
        assert same.capture_set <= more.capture_set


class TestInterception:
    def test_forwarding_path_never_captured(self, graph):
        feasible = 0
        for attacker in [0, 20, 50, 80]:
            result = simulate_interception(graph, victim=100, attacker=attacker)
            if not result.interception_feasible:
                continue
            feasible += 1
            assert result.forwarding_path is not None
            assert result.forwarding_path[0] == attacker
            assert result.forwarding_path[-1] == 100
            for asn in result.forwarding_path[1:]:
                assert asn not in result.capture_set, (
                    f"on-path AS{asn} captured: forwarded traffic would loop"
                )
        assert feasible > 0

    def test_capture_at_most_same_prefix(self, graph):
        """Scoping the announcement can only shrink the blast radius."""
        same = simulate_hijack(graph, 100, 50, AttackKind.SAME_PREFIX)
        inter = simulate_interception(graph, 100, 50)
        if inter.interception_feasible:
            assert inter.capture_set <= same.capture_set | {50}

    def test_dispatch_through_simulate_hijack(self, graph):
        a = simulate_hijack(graph, 100, 50, AttackKind.INTERCEPTION)
        b = simulate_interception(graph, 100, 50)
        assert a.capture_set == b.capture_set
        assert a.interception_feasible == b.interception_feasible

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=119), st.integers(min_value=0, max_value=119))
    def test_invariants_hold_for_random_pairs(self, victim, attacker):
        g = generate_topology(TopologyConfig(num_ases=120, num_tier1=4, num_tier2=25, seed=9))
        if victim == attacker:
            return
        result = simulate_interception(g, victim, attacker)
        if result.interception_feasible:
            assert result.forwarding_path is not None
            assert not set(result.forwarding_path[1:]) & result.capture_set
            assert result.announcement_scope
            assert result.announcement_scope <= g.neighbours(attacker)


class TestCommunityScopedHijack:
    def test_capture_limited_to_neighbours(self, graph):
        result = simulate_community_scoped_hijack(graph, victim=100, attacker=50)
        assert result.capture_set <= graph.neighbours(50) | {50}

    def test_stealthier_than_global_hijack(self, graph):
        scoped = simulate_community_scoped_hijack(graph, 100, 50)
        global_ = simulate_hijack(graph, 100, 50, AttackKind.SAME_PREFIX)
        assert len(scoped.capture_set) <= len(global_.capture_set)

    def test_long_path_neighbours_preferentially_captured(self, graph):
        """§5: stealth attacks win only where legitimate paths are long."""
        baseline = compute_routes(graph, [100])
        result = simulate_community_scoped_hijack(graph, 100, 50)
        captured = [
            n for n in graph.neighbours(50) if n in result.capture_set
        ]
        safe = [n for n in graph.neighbours(50) if n not in result.capture_set]
        if captured and safe:
            avg = lambda asns: sum(len(baseline.path(a) or ()) for a in asns) / len(asns)
            assert avg(captured) >= avg(safe)

    def test_interception_always_feasible(self, graph):
        # scoped announcements never poison the attacker's own route
        result = simulate_community_scoped_hijack(graph, 100, 50)
        assert result.interception_feasible
