"""Tests for the unified experiment runner (repro.runner)."""

import pickle

import pytest

from repro.persist import CheckpointError, read_checkpoint
from repro.runner import (
    ExperimentSpec,
    Runner,
    Trial,
    TransientFields,
    run_experiment,
    spawn_trial_seed,
)


# Trial functions must be module-level so the process-pool backend can
# pickle them by reference.
def _offset_square(context, trial):
    return context["offset"] + trial.params * trial.params


def _draw(context, trial):
    rng = trial.rng()
    return [rng.randrange(10**9) for _ in range(4)]


def _pair(context, trial):
    return (trial.params, trial.params + 1)


def _spec(n=8, seed=5, trial_fn=_offset_square, trials=None, **kw):
    return ExperimentSpec(
        name="unit-sweep",
        trial_fn=trial_fn,
        trials=trials if trials is not None else tuple(
            (f"item-{i}", i) for i in range(n)
        ),
        context={"offset": 100},
        seed=seed,
        params={"n": n},
        **kw,
    )


class TestSeedSpawning:
    def test_deterministic(self):
        assert spawn_trial_seed(7, "exp", "t1") == spawn_trial_seed(7, "exp", "t1")

    def test_depends_on_every_component(self):
        base = spawn_trial_seed(7, "exp", "t1")
        assert spawn_trial_seed(8, "exp", "t1") != base
        assert spawn_trial_seed(7, "other", "t1") != base
        assert spawn_trial_seed(7, "exp", "t2") != base

    def test_fits_in_signed_64(self):
        for trial_id in ("a", "b", "c"):
            assert 0 <= spawn_trial_seed(0, "exp", trial_id) < 2**63

    def test_independent_of_enumeration_order(self):
        """A trial keeps its seed wherever it appears in the sweep."""
        forward = _spec().enumerate()
        reversed_spec = _spec(trials=tuple(reversed(_spec().trials)))
        by_id = {t.id: t.seed for t in reversed_spec.enumerate()}
        for trial in forward:
            assert by_id[trial.id] == trial.seed

    def test_trial_rng_reproducible(self):
        trial = Trial(index=0, id="t", params=None, seed=99)
        assert trial.rng().random() == trial.rng().random()


class TestSpecValidation:
    def test_empty_trials_rejected(self):
        with pytest.raises(ValueError, match="no trials"):
            _spec(trials=())

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate trial id"):
            _spec(trials=(("t", 1), ("t", 2)))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            ExperimentSpec(name="", trial_fn=_offset_square, trials=(("t", 1),))

    def test_enumerate_assigns_indices(self):
        trials = _spec(n=3).enumerate()
        assert [t.index for t in trials] == [0, 1, 2]
        assert [t.params for t in trials] == [0, 1, 2]

    def test_header_identity(self):
        header = _spec(n=3, seed=11).header()
        assert header == {
            "experiment": "unit-sweep",
            "seed": 11,
            "total_trials": 3,
            "params": {"n": 3},
        }


class _Context(TransientFields):
    _transient = ("engine",)

    def __init__(self, data, engine):
        self.data = data
        self.engine = engine


class TestTransientFields:
    def test_transient_field_nulled_on_pickle(self):
        ctx = _Context(data=[1, 2], engine=object())
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone.data == [1, 2]
        assert clone.engine is None

    def test_original_untouched(self):
        engine = object()
        ctx = _Context(data=[], engine=engine)
        pickle.dumps(ctx)
        assert ctx.engine is engine


class TestSerialRun:
    def test_results_in_enumeration_order(self):
        report = run_experiment(_spec(n=5))
        assert report.results() == [100 + i * i for i in range(5)]
        assert [r.trial_id for r in report.records] == [
            f"item-{i}" for i in range(5)
        ]

    def test_report_metadata(self):
        report = run_experiment(_spec(n=5))
        assert report.experiment == "unit-sweep"
        assert report.completed == 5
        assert report.resumed == 0
        assert report.jobs == 1
        assert report.checkpoint is None

    def test_runner_validation(self):
        with pytest.raises(ValueError):
            Runner(jobs=0)
        with pytest.raises(ValueError):
            Runner(chunk_size=0)
        with pytest.raises(ValueError):
            Runner(resume=True)  # resume needs a checkpoint path


class TestShardedEquivalence:
    def test_jobs_4_matches_serial(self):
        serial = run_experiment(_spec(n=10))
        sharded = run_experiment(_spec(n=10), jobs=4)
        assert sharded.results() == serial.results()

    def test_per_trial_rng_independent_of_sharding(self):
        """The satellite RNG fix: randomness never depends on the shard."""
        serial = run_experiment(_spec(n=9, trial_fn=_draw))
        sharded = run_experiment(_spec(n=9, trial_fn=_draw), jobs=3, chunk_size=1)
        assert sharded.results() == serial.results()

    def test_rng_independent_of_enumeration_order(self):
        forward = run_experiment(_spec(n=6, trial_fn=_draw))
        backward = run_experiment(
            _spec(trial_fn=_draw, trials=tuple(reversed(_spec(n=6).trials)))
        )
        by_id = {
            r.trial_id: r.result for r in backward.records
        }
        for record in forward.records:
            assert by_id[record.trial_id] == record.result

    def test_resilience_sweep_jobs_equivalence(self, small_scenario):
        """End-to-end regression: a real sweep at jobs=1 == jobs=2."""
        from repro.core.resilience import compute_resilience

        client = small_scenario.client_ases(1)[0]
        guards = small_scenario.consensus.guards()[:12]

        def run(jobs):
            return compute_resilience(
                small_scenario.graph,
                client,
                guards,
                guard_asn=lambda g: small_scenario.relay_asn(g.fingerprint),
                num_attackers=8,
                seed=3,
                jobs=jobs,
            )

        assert run(2).resilience == run(1).resilience


class TestCheckpointing:
    def test_checkpoint_records_every_trial(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        run_experiment(_spec(n=4), checkpoint=path)
        header, records = read_checkpoint(path)
        assert header["experiment"] == "unit-sweep"
        assert header["format_version"] == 1
        assert header["total_trials"] == 4
        assert [r["id"] for r in records] == [f"item-{i}" for i in range(4)]
        assert [r["result"] for r in records] == [100 + i * i for i in range(4)]

    def _interrupt(self, path, keep_trials):
        """Truncate a finished checkpoint back to its first N trials."""
        with open(path) as fh:
            lines = fh.readlines()
        with open(path, "w") as fh:
            fh.writelines(lines[: 1 + keep_trials])

    def test_truncated_resume_matches_uninterrupted(self, tmp_path):
        uninterrupted = run_experiment(_spec(n=8))

        path = str(tmp_path / "sweep.ckpt")
        run_experiment(_spec(n=8), checkpoint=path)
        self._interrupt(path, keep_trials=4)

        resumed = run_experiment(_spec(n=8), checkpoint=path, resume=True)
        assert resumed.results() == uninterrupted.results()
        assert resumed.resumed == 4
        assert resumed.completed == 4
        assert sum(r.resumed for r in resumed.records) == 4

        # The file now records every trial exactly once.
        _header, records = read_checkpoint(path)
        ids = [r["id"] for r in records]
        assert sorted(ids) == sorted(set(ids))
        assert len(ids) == 8

    def test_sharded_resume_matches_uninterrupted(self, tmp_path):
        uninterrupted = run_experiment(_spec(n=8))
        path = str(tmp_path / "sweep.ckpt")
        run_experiment(_spec(n=8), checkpoint=path)
        self._interrupt(path, keep_trials=4)
        resumed = run_experiment(
            _spec(n=8), jobs=2, checkpoint=path, resume=True
        )
        assert resumed.results() == uninterrupted.results()

    def test_fully_recorded_resume_runs_nothing(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        first = run_experiment(_spec(n=5), checkpoint=path)
        again = run_experiment(_spec(n=5), checkpoint=path, resume=True)
        assert again.results() == first.results()
        assert again.completed == 0
        assert again.resumed == 5

    def test_corrupt_trailing_line_dropped(self, tmp_path):
        """A kill mid-append loses at most the half-written line."""
        path = str(tmp_path / "sweep.ckpt")
        run_experiment(_spec(n=6), checkpoint=path)
        self._interrupt(path, keep_trials=3)
        with open(path, "a") as fh:
            fh.write('{"type": "trial", "id": "item-3", "resu')  # no newline

        resumed = run_experiment(_spec(n=6), checkpoint=path, resume=True)
        assert resumed.resumed == 3  # the torn item-3 record was dropped
        assert resumed.results() == run_experiment(_spec(n=6)).results()
        _header, records = read_checkpoint(path)
        assert len(records) == 6

    def test_corrupt_middle_line_refused(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        run_experiment(_spec(n=6), checkpoint=path)
        with open(path) as fh:
            lines = fh.readlines()
        lines[2] = "NOT JSON\n"  # corruption *before* intact records
        with open(path, "w") as fh:
            fh.writelines(lines)
        with pytest.raises(CheckpointError, match="followed by intact"):
            run_experiment(_spec(n=6), checkpoint=path, resume=True)

    def test_wrong_experiment_refused(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        run_experiment(_spec(n=4), checkpoint=path)
        other = ExperimentSpec(
            name="other-sweep",
            trial_fn=_offset_square,
            trials=tuple((f"item-{i}", i) for i in range(4)),
            context={"offset": 100},
        )
        with pytest.raises(CheckpointError, match="experiment mismatch"):
            run_experiment(other, checkpoint=path, resume=True)

    def test_wrong_seed_refused(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        run_experiment(_spec(n=4, seed=5), checkpoint=path)
        with pytest.raises(CheckpointError, match="seed mismatch"):
            run_experiment(_spec(n=4, seed=6), checkpoint=path, resume=True)

    def test_foreign_trial_id_refused(self, tmp_path):
        """A checkpoint from a different enumeration is caught on load."""
        path = str(tmp_path / "sweep.ckpt")
        run_experiment(_spec(n=6), checkpoint=path)
        with pytest.raises(ValueError, match="not part of experiment"):
            run_experiment(_spec(n=3), checkpoint=path, resume=True)

    def test_unsupported_version_refused(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        with open(path, "w") as fh:
            fh.write('{"type": "header", "format_version": 99}\n')
        with pytest.raises(CheckpointError, match="format version"):
            run_experiment(_spec(n=3), checkpoint=path, resume=True)

    def test_encode_decode_roundtrip(self, tmp_path):
        """Resumed results pass through encode/decode and come back equal."""
        def spec():
            return _spec(
                n=6,
                trial_fn=_pair,
                encode_result=list,
                decode_result=tuple,
            )

        uninterrupted = run_experiment(spec())
        path = str(tmp_path / "sweep.ckpt")
        run_experiment(spec(), checkpoint=path)
        self._interrupt(path, keep_trials=3)
        resumed = run_experiment(spec(), checkpoint=path, resume=True)
        assert resumed.results() == uninterrupted.results()
        assert all(isinstance(r, tuple) for r in resumed.results())
