"""Tests for the end-to-end scenario builder."""

import pytest

from repro.scenario import Scenario, ScenarioConfig


class TestScenarioBuild:
    def test_small_build_consistency(self, small_scenario):
        sc = small_scenario
        assert sc.graph.is_connected()
        sc.graph.validate()
        # every prefix origin exists in the topology
        for prefix, origin in sc.prefix_origins.items():
            assert origin in sc.graph
        # tor prefixes are a subset of all prefixes
        assert set(sc.tor_prefixes) <= set(sc.prefix_origins)

    def test_background_and_tor_prefixes_disjoint_blocks(self, small_scenario):
        sc = small_scenario
        for bg in sc.background_origins:
            for tp in sc.tor_prefixes:
                assert not bg.contains_prefix(tp) and not tp.contains_prefix(bg)

    def test_deterministic_given_seed(self):
        a = Scenario(ScenarioConfig.small(seed=5))
        b = Scenario(ScenarioConfig.small(seed=5))
        assert a.consensus.to_text() == b.consensus.to_text()
        assert a.prefix_origins == b.prefix_origins
        assert a.graph.to_as_rel() == b.graph.to_as_rel()

    def test_seeds_differ(self):
        a = Scenario(ScenarioConfig.small(seed=5))
        b = Scenario(ScenarioConfig.small(seed=6))
        assert a.consensus.to_text() != b.consensus.to_text()

    def test_client_ases_are_non_hosting_stubs(self, small_scenario):
        sc = small_scenario
        clients = sc.client_ases(5)
        hosting = set(sc.tor.prefix_origins.values())
        for client in clients:
            assert client in sc.graph.stub_ases()
            assert client not in hosting

    def test_client_ases_deterministic(self, small_scenario):
        assert small_scenario.client_ases(5) == small_scenario.client_ases(5)

    def test_too_many_clients_raises(self, small_scenario):
        with pytest.raises(ValueError):
            small_scenario.client_ases(10**6)

    def test_adversary_is_transit(self, small_scenario):
        sc = small_scenario
        adversary = sc.adversary_as()
        assert sc.graph.customers(adversary)
        assert sc.graph.providers(adversary)

    def test_relay_asn_lookup(self, small_scenario):
        sc = small_scenario
        relay = sc.consensus.guards()[0]
        asn = sc.relay_asn(relay.fingerprint)
        assert asn in sc.graph

    def test_paper_config_targets_paper_scale(self):
        cfg = ScenarioConfig.paper()
        assert cfg.topology.num_ases == 1000
        assert cfg.consensus.scale == 1.0
        assert cfg.trace.sessions_per_collector * len(cfg.trace.collector_names) >= 70
