"""Property-based tests: traffic-substrate invariants under random configs."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.traffic.circuitsim import CircuitTransfer, TransferConfig
from repro.traffic.eventloop import EventLoop
from repro.traffic.tcp import TcpConfig, TcpConnection

_tcp_configs = st.builds(
    TcpConfig,
    latency=st.floats(min_value=0.001, max_value=0.15),
    rate=st.floats(min_value=100_000.0, max_value=50_000_000.0),
    loss_prob=st.floats(min_value=0.0, max_value=0.08),
    seed=st.integers(min_value=0, max_value=1000),
)


class TestTcpInvariants:
    @settings(deadline=None, max_examples=15, suppress_health_check=[HealthCheck.too_slow])
    @given(config=_tcp_configs, size=st.integers(min_value=1, max_value=400_000))
    def test_always_delivers_exactly_once(self, config, size):
        """Whatever the link looks like, TCP delivers exactly the bytes
        written: no loss to the application, no duplication."""
        loop = EventLoop()
        delivered = [0]

        def reader(conn):
            delivered[0] += conn.read()

        conn = TcpConnection(loop, config, on_readable=reader)
        conn.write(size)
        conn.close_writer()
        loop.run(max_events=5_000_000)
        assert conn.finished
        assert delivered[0] == size
        assert conn.rcv_nxt == size
        assert conn.snd_una == size

    @settings(deadline=None, max_examples=10, suppress_health_check=[HealthCheck.too_slow])
    @given(config=_tcp_configs)
    def test_sequence_numbers_never_exceed_written(self, config):
        loop = EventLoop()
        max_seq = [0]
        conn = TcpConnection(
            loop,
            config,
            on_readable=lambda c: c.read(),
            on_data_sent=lambda t, seq: max_seq.__setitem__(0, max(max_seq[0], seq)),
        )
        conn.write(100_000)
        conn.close_writer()
        loop.run(max_events=2_000_000)
        assert max_seq[0] <= 100_000

    @settings(deadline=None, max_examples=10, suppress_health_check=[HealthCheck.too_slow])
    @given(config=_tcp_configs)
    def test_flight_bounded_by_peak_send_window(self, config):
        """In-flight data may exceed the *current* cwnd right after a
        multiplicative decrease (TCP can't recall sent packets), but it can
        never exceed the largest send window that was ever open."""
        loop = EventLoop()
        violations = [0]
        conn = TcpConnection(loop, config, on_readable=lambda c: c.read())

        def on_sent(_time, seq_end):
            if seq_end > conn.snd_nxt:  # new data, not a retransmission
                window = min(conn.cwnd, config.rcv_buffer)
                if seq_end - conn.snd_una > window:
                    violations[0] += 1

        conn.on_data_sent = on_sent
        conn.write(200_000)
        conn.close_writer()
        loop.run(max_events=2_000_000)
        assert violations[0] == 0


class TestCircuitInvariants:
    @settings(deadline=None, max_examples=8, suppress_health_check=[HealthCheck.too_slow])
    @given(
        size=st.integers(min_value=1_000, max_value=1_500_000),
        seed=st.integers(min_value=0, max_value=50),
        loss=st.floats(min_value=0.0, max_value=0.03),
    )
    def test_transfer_conserves_bytes(self, size, seed, loss):
        config = TransferConfig(
            file_size=size,
            server_tcp=TcpConfig(latency=0.03, rate=6e6, loss_prob=loss, seed=seed),
            client_tcp=TcpConfig(latency=0.02, rate=4e6, loss_prob=loss, seed=seed + 1),
            seed=seed,
        )
        result = CircuitTransfer(config).run()
        assert result.completed
        assert result.bytes_delivered == size
        # capture totals equal at each connection's two taps
        assert result.taps.server_to_exit.total_bytes == result.taps.exit_to_server.total_bytes
        assert result.taps.guard_to_client.total_bytes == result.taps.client_to_guard.total_bytes
        # taps never report more application bytes than exist (plus no
        # undercount): data-direction totals equal the file size exactly
        assert result.taps.server_to_exit.total_bytes == size
        # cells: ceiling division accounting
        from repro.traffic.cells import CELL_PAYLOAD
        expected_cells = (size + CELL_PAYLOAD - 1) // CELL_PAYLOAD
        assert result.cells_forwarded == expected_cells

    @settings(deadline=None, max_examples=6, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_monotone_cumulative_curves(self, seed):
        result = CircuitTransfer(
            TransferConfig(file_size=300_000, seed=seed)
        ).run()
        for cap in result.taps.all():
            values = [v for _t, v in cap.points]
            assert all(a < b for a, b in zip(values, values[1:]))
