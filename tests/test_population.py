"""Tests for the struct-of-arrays population kernel.

The load-bearing property: results are bit-for-bit identical across the
vector and loop tiers, across block sizes, and against the
``simulate_user_population`` reference wrapper — per-user
first-compromise days included, not just aggregates.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.population import (
    POPULATION_BACKEND,
    PopulationAggregate,
    PopulationReport,
    UserOutcome,
    simulate_population,
)
from repro.core.surveillance import ObservationMode, SurveillanceModel
from repro.tor.churn import ChurnConfig, evolve_consensus
from repro.tor.clientdist import ClientASDistribution

has_numpy = POPULATION_BACKEND == "vector"


@pytest.fixture(scope="module")
def world(small_scenario):
    clients = small_scenario.client_ases(8)
    dests = small_scenario.destination_ases(4)
    adversaries = frozenset(
        {small_scenario.adversary_as()}
        | set(sorted(small_scenario.graph.tier1_ases())[:2])
    )
    return small_scenario, clients, dests, adversaries


def run(world, **overrides):
    scenario, clients, dests, adversaries = world
    kwargs = dict(days=6, circuits_per_day=4, seed=3)
    kwargs.update(overrides)
    return simulate_population(
        scenario.graph,
        kwargs.pop("consensus", scenario.consensus),
        scenario.relay_asn,
        kwargs.pop("clients", clients),
        dests,
        kwargs.pop("adversaries", adversaries),
        **kwargs,
    )


class TestBackendEquivalence:
    def test_loop_matches_reference_semantics(self, world):
        report = run(world, backend="loop")
        assert report.num_users == len(world[1])
        assert all(isinstance(o, UserOutcome) for o in report.outcomes)

    @pytest.mark.skipif(not has_numpy, reason="vector tier needs numpy")
    def test_vector_equals_loop_bit_for_bit(self, world):
        vector = run(world, backend="vector")
        loop = run(world, backend="loop")
        assert vector.outcomes == loop.outcomes
        assert vector.aggregate == loop.aggregate

    def test_sharding_invariance(self, world):
        whole = run(world, backend="loop")
        for block_size in (1, 3, 5):
            sharded = run(world, backend="loop", block_size=block_size)
            assert sharded.outcomes == whole.outcomes
            assert sharded.aggregate == whole.aggregate

    def test_jobs_invariance(self, world, tmp_path):
        serial = run(world, backend="loop", block_size=3)
        parallel = run(world, backend="loop", block_size=3, jobs=2)
        assert parallel.outcomes == serial.outcomes
        assert parallel.aggregate == serial.aggregate

    def test_checkpoint_resume_round_trips(self, world, tmp_path):
        ckpt = str(tmp_path / "population.ckpt")
        first = run(world, backend="loop", block_size=3, checkpoint=ckpt)
        resumed = run(
            world, backend="loop", block_size=3, checkpoint=ckpt, resume=True
        )
        assert resumed.outcomes == first.outcomes
        assert resumed.aggregate == first.aggregate

    @settings(deadline=None, max_examples=10)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        days=st.integers(min_value=1, max_value=5),
        circuits=st.integers(min_value=1, max_value=3),
        guards=st.integers(min_value=1, max_value=3),
        block=st.integers(min_value=1, max_value=9),
    )
    def test_property_soa_equals_reference(
        self, world, seed, days, circuits, guards, block
    ):
        """Same seeds → same per-user first-compromise days, across the
        backends and any block size (the numpy-free fallback included)."""
        kwargs = dict(
            days=days, circuits_per_day=circuits, num_guards=guards, seed=seed
        )
        reference = run(world, backend="loop", **kwargs)
        sharded = run(world, backend="loop", block_size=block, **kwargs)
        assert sharded.outcomes == reference.outcomes
        if has_numpy:
            vector = run(world, backend="vector", block_size=block, **kwargs)
            assert vector.outcomes == reference.outcomes
            assert vector.aggregate == reference.aggregate

    def test_unknown_backend_rejected(self, world):
        with pytest.raises(ValueError):
            run(world, backend="simd")
        if not has_numpy:
            with pytest.raises(RuntimeError):
                run(world, backend="vector")


class TestScenarioKnobs:
    def test_sampled_clients_match_across_tiers_and_shards(self, world):
        scenario, clients, _d, _a = world
        dist = ClientASDistribution.zipf(clients, exponent=1.2)
        one = run(world, clients=dist, num_users=60, backend="loop")
        two = run(
            world, clients=dist, num_users=60, backend="loop", block_size=7
        )
        assert one.outcomes == two.outcomes
        assert {o.client_asn for o in one.outcomes} <= set(clients)
        if has_numpy:
            three = run(world, clients=dist, num_users=60, backend="vector")
            assert three.outcomes == one.outcomes

    def test_churn_series_simulates_and_matches_tiers(self, world):
        scenario = world[0]
        series = evolve_consensus(scenario.consensus, 6, ChurnConfig(seed=4))
        loop = run(world, consensus=series, backend="loop")
        assert loop.num_users == len(world[1])
        if has_numpy:
            vector = run(world, consensus=series, backend="vector")
            assert vector.outcomes == loop.outcomes

    def test_either_dominates_forward_per_user(self, world):
        forward = run(world, mode=ObservationMode.FORWARD)
        either = run(world, mode=ObservationMode.EITHER)
        for f, e in zip(forward.outcomes, either.outcomes):
            assert e.compromised_circuits >= f.compromised_circuits
            if f.first_compromise_day is not None:
                assert e.first_compromise_day <= f.first_compromise_day

    def test_guard_rotation_changes_guards(self, world):
        # With a sub-day rotation period every day re-rolls the guards, so
        # across users the compromise pattern must differ from the pinned
        # (effectively infinite rotation) run somewhere.
        pinned = run(world, rotation_days=10_000.0, days=8)
        churny = run(world, rotation_days=0.5, days=8)
        assert pinned.outcomes != churny.outcomes


class TestReportAndAggregates:
    def test_keep_outcomes_default_and_override(self, world):
        kept = run(world)
        assert kept.outcomes is not None  # small N keeps rows by default
        dropped = run(world, keep_outcomes=False)
        assert dropped.outcomes is None
        assert dropped.aggregate == kept.aggregate
        assert dropped.fraction_compromised == kept.fraction_compromised
        assert (
            dropped.median_days_to_compromise()
            == kept.median_days_to_compromise()
        )

    def test_report_matches_outcome_recomputation(self, world):
        report = run(world, days=8)
        outcomes = report.outcomes
        n = len(outcomes)
        assert report.fraction_compromised == pytest.approx(
            sum(o.compromised for o in outcomes) / n
        )
        curve = report.fraction_compromised_by_day()
        for day in range(1, report.days + 1):
            hit = sum(
                1
                for o in outcomes
                if o.first_compromise_day is not None
                and o.first_compromise_day <= day
            )
            assert curve[day - 1] == pytest.approx(hit / n)

    def test_legacy_report_construction_derives_aggregate(self):
        outcomes = (
            UserOutcome(1, 4, 2, 2),
            UserOutcome(2, 4, 0, None),
            UserOutcome(3, 4, 1, 1),
        )
        report = PopulationReport(outcomes=outcomes, days=3)
        assert report.aggregate.users == 3
        assert report.aggregate.compromised_users == 2
        assert report.fraction_compromised == pytest.approx(2 / 3)
        assert report.mean_circuit_compromise_rate == pytest.approx(3 / 12)

    def test_aggregate_merge_is_associative(self):
        a = PopulationAggregate(2, 8, 3, (1, 1, 0), (0, 1, 0, 1))
        b = PopulationAggregate(1, 4, 0, (1, 0, 0, 0), (1,))
        merged = PopulationAggregate.merge([a, b])
        assert merged.users == 3
        assert merged.circuits_built == 12
        assert merged.first_day_hist == (2, 1, 0, 0)
        assert merged.comp_count_hist == (1, 1, 0, 1)
        with pytest.raises(ValueError):
            PopulationAggregate.merge([])

    def test_percentiles(self, world):
        report = run(world, days=10)
        median = report.median_days_to_compromise()
        if median is not None:
            assert report.time_to_compromise_percentile(0.5) == median
        p90 = report.compromise_rate_percentile(0.9)
        p50 = report.compromise_rate_percentile(0.5)
        assert 0.0 <= p50 <= p90 <= 1.0
        with pytest.raises(ValueError):
            report.time_to_compromise_percentile(0.0)
        with pytest.raises(ValueError):
            report.compromise_rate_percentile(1.5)


class TestExposureTable:
    def test_matches_compromised_by(self, small_scenario):
        model = SurveillanceModel(
            small_scenario.graph, engine=small_scenario.engine
        )
        clients = small_scenario.client_ases(4)
        guards = small_scenario.destination_ases(3)
        adversaries = set(sorted(small_scenario.graph.tier1_ases())[:2])
        for mode in ObservationMode:
            table = model.exposure_table(adversaries, clients, guards, mode)
            for i, client in enumerate(clients):
                for j, guard in enumerate(guards):
                    view = model.segment_view(client, guard)
                    assert table[i][j] == bool(
                        adversaries & view.observers(mode)
                    )


class TestValidation:
    def test_bad_inputs(self, world):
        scenario, clients, dests, adversaries = world
        with pytest.raises(ValueError):
            run(world, days=0)
        with pytest.raises(ValueError):
            run(world, circuits_per_day=0)
        with pytest.raises(ValueError):
            run(world, num_guards=0)
        with pytest.raises(ValueError):
            run(world, rotation_days=0.0)
        with pytest.raises(ValueError):
            run(world, clients=[])
        with pytest.raises(ValueError):
            run(world, adversaries=set())
        with pytest.raises(ValueError):
            run(world, clients=clients, num_users=len(clients) + 1)
        with pytest.raises(ValueError):
            run(
                world,
                clients=ClientASDistribution.uniform(clients),
                num_users=None,
            )
        with pytest.raises(ValueError):
            run(world, consensus=[])
