"""Cross-module integration tests: the paper's pipelines end to end."""

import random

import pytest

from repro.analysis.prefixes import Prefix
from repro.asgraph import compute_routes
from repro.bgpsim.attacks import AttackKind, simulate_hijack, simulate_interception
from repro.bgpsim.simulator import BGPSimulator, SimulatorConfig
from repro.core.asymmetric import FlowMatcher
from repro.core.surveillance import ObservationMode, SurveillanceModel
from repro.core.temporal import client_exposure
from repro.tor.client import TorClient
from repro.traffic.circuitsim import CircuitTransfer, TransferConfig

P = Prefix.parse("10.0.0.0/24")


class TestAttackVsMessageSimulator:
    """The static attack library must agree with the message-level
    simulator on stable hijack outcomes — the strongest cross-validation
    the repo has between its two routing engines."""

    def test_same_prefix_hijack_capture_sets_agree(self, tiny_graph):
        victim, attacker = 50, 10
        static = simulate_hijack(tiny_graph, victim, attacker, AttackKind.SAME_PREFIX)
        sim = BGPSimulator(tiny_graph, SimulatorConfig(seed=1))
        sim.announce(victim, P)
        sim.run()
        sim.announce(attacker, P)
        sim.run()
        sim_captured = {
            asn
            for asn in tiny_graph.ases
            if (sim.path(asn, P) or (None,))[-1] == attacker
        }
        assert sim_captured == set(static.capture_set)

    def test_scoped_interception_announcement_in_simulator(self, tiny_graph):
        victim, attacker = 50, 10
        static = simulate_interception(tiny_graph, victim, attacker)
        if not static.interception_feasible:
            pytest.skip("interception infeasible for this pair")
        sim = BGPSimulator(tiny_graph, SimulatorConfig(seed=2))
        sim.announce(victim, P)
        sim.run()
        sim.announce(attacker, P, to_neighbours=static.announcement_scope)
        sim.run()
        # the attacker's forwarding path must still point at the victim
        for asn in static.forwarding_path[1:]:
            path = sim.path(asn, P)
            assert path is not None and path[-1] == victim, f"AS{asn} captured"

    def test_more_specific_is_separate_prefix_in_practice(self, tiny_graph):
        """A more-specific hijack coexists: victim keeps the /24, attacker
        wins the /25 at every AS via longest-prefix match (modelled here as
        the attacker being sole origin of the /25)."""
        victim, attacker = 50, 10
        sub = P.subprefix(25, 0)
        sim = BGPSimulator(tiny_graph, SimulatorConfig(seed=3))
        sim.announce(victim, P)
        sim.announce(attacker, sub)
        sim.run()
        for asn in tiny_graph.ases:
            covering = sim.path(asn, P)
            specific = sim.path(asn, sub)
            assert covering is not None and covering[-1] == victim
            assert specific is not None and specific[-1] == attacker


class TestTemporalPipeline:
    def test_guard_prefix_exposure_reflects_real_guards(self, small_scenario, small_trace):
        trace, observers = small_trace
        client_asn = observers[0]
        client = TorClient(client_asn, small_scenario.consensus, rng=random.Random(3))
        prefixes = [
            small_scenario.tor.relay_prefix[g.fingerprint] for g in client.guards
        ]
        exposure = client_exposure(trace, client_asn, prefixes, num_samples=8)
        assert exposure.final_exposure >= len(
            set().union(*[set()] )
        )  # trivially >= 0
        # baseline sanity: exposure at least the static path's AS count
        model = SurveillanceModel(small_scenario.graph)
        guard_asn = small_scenario.relay_asn(client.guards[0].fingerprint)
        static_path = model.path(client_asn, guard_asn)
        if static_path is not None:
            assert exposure.final_exposure >= 1

    def test_exposure_feeds_surveillance(self, small_scenario, small_trace):
        """ASes accumulated in the temporal exposure should include the
        ASes on the static forward path (they carried traffic at t=0)."""
        trace, observers = small_trace
        client_asn = observers[0]
        prefix = sorted(trace.tor_prefixes, key=str)[0]
        origin = trace.prefix_origins[prefix]
        stream = trace.observer_stream(client_asn)
        timeline = stream.path_timeline(prefix)
        if not timeline or timeline[0][1] is None:
            pytest.skip("prefix not announced to this observer")
        first_path = timeline[0][1]
        outcome = compute_routes(small_scenario.graph, [origin])
        static = outcome.path(client_asn)
        assert static is not None
        assert first_path == static  # t=0 trace state == static fixed point


class TestTrafficToMatcherPipeline:
    def test_low_loss_does_not_break_matching(self):
        flows = {}
        for i in range(4):
            rng = random.Random(40 + i)
            writes = tuple(
                (j * rng.uniform(1.0, 3.0), rng.randint(50_000, 600_000))
                for j in range(5)
            )
            total = sum(n for _t, n in writes)
            from repro.traffic.tcp import TcpConfig

            flows[f"f{i}"] = CircuitTransfer(
                TransferConfig(
                    file_size=total,
                    writes=writes,
                    server_tcp=TcpConfig(latency=0.03, rate=6e6, loss_prob=0.01, seed=i),
                    client_tcp=TcpConfig(latency=0.02, rate=4e6, loss_prob=0.01, seed=i + 9),
                )
            ).run()
        matcher = FlowMatcher(bin_width=1.0)
        correct = 0
        for name, flow in flows.items():
            result = matcher.match(
                flow.taps.exit_to_server,
                {n: f.taps.client_to_guard for n, f in flows.items()},
            )
            correct += result.best == name
        assert correct >= 3

    def test_capture_conservation_through_pipeline(self):
        result = CircuitTransfer(TransferConfig(file_size=700_000)).run()
        # bytes acked at each end equal bytes sent at that end
        assert result.taps.exit_to_server.total_bytes == result.taps.server_to_exit.total_bytes
        assert result.taps.client_to_guard.total_bytes == result.taps.guard_to_client.total_bytes
        # and the application got exactly the file
        assert result.bytes_delivered == 700_000


class TestObservationModesOnRealCircuits:
    def test_asymmetry_exists_in_generated_world(self, small_scenario):
        """§3.3's premise: Internet paths are often asymmetric.  The
        synthetic world must actually exhibit forward/reverse AS-set
        differences for a noticeable share of pairs."""
        model = SurveillanceModel(small_scenario.graph)
        rng = random.Random(0)
        ases = sorted(small_scenario.graph.ases)
        pairs = [(rng.choice(ases), rng.choice(ases)) for _ in range(200)]
        asym = sum(
            1 for a, b in pairs if a != b and model.is_asymmetric(a, b)
        )
        assert asym > 10, f"only {asym}/200 pairs asymmetric"

    def test_either_strictly_beats_forward_somewhere(self, small_scenario):
        model = SurveillanceModel(small_scenario.graph)
        rng = random.Random(1)
        clients = small_scenario.client_ases(5)
        dests = small_scenario.destination_ases(5)
        guards = [small_scenario.relay_asn(g.fingerprint) for g in small_scenario.consensus.guards()[:10]]
        exits = [small_scenario.relay_asn(e.fingerprint) for e in small_scenario.consensus.exits()[:10]]
        circuits = [
            (rng.choice(clients), rng.choice(guards), rng.choice(exits), rng.choice(dests))
            for _ in range(40)
        ]
        fwd = model.observers_per_circuit(circuits, ObservationMode.FORWARD)
        either = model.observers_per_circuit(circuits, ObservationMode.EITHER)
        assert sum(either) > sum(fwd), "asymmetric observation added nothing"
