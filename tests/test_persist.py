"""Tests for world/trace persistence."""

import json
import os

import pytest

from repro.persist import (
    CheckpointError,
    CheckpointWriter,
    load_trace_streams,
    load_world,
    open_trace_sources,
    read_checkpoint,
    register_checkpoint,
    save_trace,
    save_trace_stream,
    save_world,
)


@pytest.fixture()
def saved_world(small_scenario, tmp_path):
    directory = str(tmp_path / "world")
    save_world(
        directory,
        small_scenario.graph,
        small_scenario.consensus,
        small_scenario.prefix_origins,
        small_scenario.tor_prefixes,
        extra_manifest={"seed": small_scenario.config.seed},
    )
    return directory


class TestWorldRoundTrip:
    def test_layout(self, saved_world):
        for name in ("MANIFEST.json", "topology.as-rel", "consensus.txt", "prefixes.txt"):
            assert os.path.exists(os.path.join(saved_world, name))

    def test_topology_roundtrip(self, saved_world, small_scenario):
        world = load_world(saved_world)
        assert world.graph.ases == small_scenario.graph.ases
        assert world.graph.num_links() == small_scenario.graph.num_links()

    def test_consensus_roundtrip(self, saved_world, small_scenario):
        world = load_world(saved_world)
        assert len(world.consensus) == len(small_scenario.consensus)
        original = small_scenario.consensus.relays[0]
        restored = world.consensus.relay(original.fingerprint)
        assert restored.address == original.address
        assert restored.flags == original.flags

    def test_prefixes_roundtrip(self, saved_world, small_scenario):
        world = load_world(saved_world)
        assert world.prefix_origins == small_scenario.prefix_origins
        assert world.tor_prefixes == small_scenario.tor_prefixes

    def test_manifest_extra_fields(self, saved_world, small_scenario):
        world = load_world(saved_world)
        assert world.manifest["seed"] == small_scenario.config.seed
        assert world.manifest["num_relays"] == len(small_scenario.consensus)

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_world(str(tmp_path))

    def test_bad_version_rejected(self, saved_world):
        manifest_path = os.path.join(saved_world, "MANIFEST.json")
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        manifest["format_version"] = 99
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(ValueError):
            load_world(saved_world)

    def test_corrupt_prefixes_rejected(self, saved_world):
        with open(os.path.join(saved_world, "prefixes.txt"), "a") as fh:
            fh.write("garbage line\n")
        with pytest.raises(ValueError):
            load_world(saved_world)


def _write_checkpoint(directory, filename, trials=3):
    header = {"experiment": "demo", "seed": 4, "total_trials": trials, "params": {}}
    with CheckpointWriter.create(os.path.join(directory, filename), header) as writer:
        for i in range(trials):
            writer.append(
                {"type": "trial", "id": f"t-{i}", "index": i, "seconds": 0.0, "result": i}
            )


class TestCheckpointManifest:
    def test_register_lists_checkpoint(self, saved_world):
        _write_checkpoint(saved_world, "demo.ckpt")
        register_checkpoint(saved_world, "demo.ckpt")
        world = load_world(saved_world)
        info = world.checkpoints["demo.ckpt"]
        assert info["format_version"] == 1
        assert info["experiment"] == "demo"
        assert info["seed"] == 4
        assert info["total_trials"] == 3
        assert info["recorded_trials"] == 3

    def test_register_requires_manifest(self, tmp_path):
        _write_checkpoint(str(tmp_path), "demo.ckpt")
        with pytest.raises(FileNotFoundError):
            register_checkpoint(str(tmp_path), "demo.ckpt")

    def test_register_requires_checkpoint_file(self, saved_world):
        with pytest.raises(FileNotFoundError):
            register_checkpoint(saved_world, "missing.ckpt")

    def test_load_rejects_unsupported_checkpoint_version(self, saved_world):
        _write_checkpoint(saved_world, "demo.ckpt")
        register_checkpoint(saved_world, "demo.ckpt")
        manifest_path = os.path.join(saved_world, "MANIFEST.json")
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        manifest["checkpoints"]["demo.ckpt"]["format_version"] = 99
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(CheckpointError, match="format version"):
            load_world(saved_world)

    def test_load_rejects_missing_listed_checkpoint(self, saved_world):
        _write_checkpoint(saved_world, "demo.ckpt")
        register_checkpoint(saved_world, "demo.ckpt")
        os.remove(os.path.join(saved_world, "demo.ckpt"))
        with pytest.raises(FileNotFoundError, match="demo.ckpt"):
            load_world(saved_world)

    def test_read_checkpoint_roundtrip(self, tmp_path):
        _write_checkpoint(str(tmp_path), "demo.ckpt", trials=5)
        header, records = read_checkpoint(str(tmp_path / "demo.ckpt"))
        assert header["total_trials"] == 5
        assert [r["result"] for r in records] == list(range(5))


class TestTraceRoundTrip:
    def test_streams_roundtrip(self, saved_world, small_trace):
        trace, _ = small_trace
        save_trace(saved_world, trace)
        duration, streams = load_trace_streams(saved_world)
        assert duration == trace.duration
        assert set(streams) == set(trace.collector_sessions)
        session = trace.collector_sessions[0]
        assert len(streams[session]) == len(trace.streams[session])

    def test_analyses_agree_after_reload(self, saved_world, small_trace):
        from repro.analysis.pathchanges import tor_ratio_samples
        from repro.bgpsim.resets import remove_reset_artifacts

        trace, _ = small_trace
        save_trace(saved_world, trace)
        _duration, streams = load_trace_streams(saved_world)
        original = tor_ratio_samples(
            [remove_reset_artifacts(trace.streams[s]) for s in trace.collector_sessions],
            trace.tor_prefixes,
        )
        reloaded = tor_ratio_samples(
            [remove_reset_artifacts(s) for s in streams.values()],
            trace.tor_prefixes,
        )
        assert sorted(original) == sorted(reloaded)

    def test_missing_trace_raises(self, saved_world):
        with pytest.raises(FileNotFoundError):
            load_trace_streams(saved_world)


class TestStreamingTracePersistence:
    def test_save_stream_without_materializing(self, saved_world, small_scenario):
        stream = small_scenario.open_trace_stream()
        counts = save_trace_stream(saved_world, stream)
        assert set(counts) == set(stream.collector_sessions)
        assert sum(counts.values()) > 0

        duration, sources = open_trace_sources(saved_world)
        assert duration == stream.duration
        assert {s.session for s in sources} == set(stream.collector_sessions)
        # the reopened files feed the streaming pipeline directly
        from repro.bgpsim.collector import merge_sources

        merged = sum(1 for _ in merge_sources(sources))
        assert merged == sum(counts.values())

    def test_stream_save_matches_materialized_save(
        self, saved_world, small_scenario, tmp_path
    ):
        stream = small_scenario.open_trace_stream()
        save_trace_stream(saved_world, stream)

        other = str(tmp_path / "materialized")
        trace = small_scenario.run_trace()
        os.makedirs(other)
        save_trace(other, trace)

        _d1, from_stream = load_trace_streams(saved_world)
        _d2, from_trace = load_trace_streams(other)
        assert set(from_stream) == set(from_trace)
        for session, stream_records in from_stream.items():
            a = [(r.time, r.prefix, r.as_path, r.from_reset) for r in stream_records]
            b = [
                (r.time, r.prefix, r.as_path, r.from_reset)
                for r in from_trace[session]
            ]
            assert a == b
