"""Tests for the surveillance model (who can correlate which circuits)."""

import pytest

from repro.asgraph import ASGraph, TopologyConfig, generate_topology
from repro.core.surveillance import ObservationMode, SurveillanceModel


def asymmetric_graph() -> ASGraph:
    """A topology where 10 -> 20 and 20 -> 10 take different paths.

    10 is a customer of 1 and peers with 3; 20 is a customer of 2;
    1 and 2 peer; 3 and 2 peer.  Forward (10->20): customer-free options
    are via peer 3 (10,3,2?) — 3 peers with 2, but peer routes don't chain;
    check with the model instead of by hand.
    """
    g = ASGraph()
    g.add_peer_link(1, 2)
    g.add_peer_link(3, 2)
    g.add_provider_link(customer=10, provider=1)
    g.add_peer_link(10, 3)
    g.add_provider_link(customer=20, provider=2)
    return g


class TestSegmentView:
    def test_includes_endpoints(self):
        model = SurveillanceModel(asymmetric_graph())
        view = model.segment_view(10, 20)
        assert 10 in view.forward and 20 in view.forward
        assert 10 in view.reverse and 20 in view.reverse

    def test_either_is_union(self):
        model = SurveillanceModel(asymmetric_graph())
        view = model.segment_view(10, 20)
        assert view.either == view.forward | view.reverse

    def test_detects_asymmetry(self):
        model = SurveillanceModel(asymmetric_graph())
        fwd = model.path(10, 20)
        rev = model.path(20, 10)
        assert fwd is not None and rev is not None
        if set(fwd) != set(rev):
            assert model.is_asymmetric(10, 20)
        # and symmetry for a trivially symmetric pair
        assert not model.is_asymmetric(10, 10) if model.path(10, 10) else True

    def test_modes_select_directions(self):
        model = SurveillanceModel(asymmetric_graph())
        view = model.segment_view(10, 20)
        assert view.observers(ObservationMode.FORWARD) == view.forward
        assert view.observers(ObservationMode.REVERSE) == view.reverse
        assert view.observers(ObservationMode.EITHER) == view.either


class TestCircuitCompromise:
    @pytest.fixture(scope="class")
    def world(self):
        g = generate_topology(TopologyConfig(num_ases=100, num_tier1=4, num_tier2=20, seed=6))
        return g, SurveillanceModel(g)

    def test_entry_as_alone_is_not_enough(self, world):
        g, model = world
        # an AS only on the entry segment can't correlate
        client, guard, exit_asn, dest = 90, 50, 60, 95
        entry_only = model.segment_view(client, guard).either - model.segment_view(
            exit_asn, dest
        ).either
        for adversary in list(entry_only)[:5]:
            assert not model.compromised_by([adversary], client, guard, exit_asn, dest)

    def test_colluding_set_pools_vantage(self, world):
        g, model = world
        client, guard, exit_asn, dest = 90, 50, 60, 95
        entry = model.segment_view(client, guard).either
        exit_side = model.segment_view(exit_asn, dest).either
        only_entry = entry - exit_side
        only_exit = exit_side - entry
        if only_entry and only_exit:
            a, b = next(iter(only_entry)), next(iter(only_exit))
            assert not model.compromised_by([a], client, guard, exit_asn, dest)
            assert not model.compromised_by([b], client, guard, exit_asn, dest)
            assert model.compromised_by([a, b], client, guard, exit_asn, dest)

    def test_either_mode_dominates_forward(self, world):
        """§3.3: asymmetric observation can only widen the observer set."""
        g, model = world
        circuits = [(90, 50, 60, 95), (91, 40, 55, 96), (92, 30, 45, 97)]
        for circuit in circuits:
            fwd = model.circuit_observers(*circuit, mode=ObservationMode.FORWARD)
            either = model.circuit_observers(*circuit, mode=ObservationMode.EITHER)
            assert fwd <= either

    def test_fraction_compromised_bounds(self, world):
        g, model = world
        circuits = [(90, 50, 60, 95), (91, 40, 55, 96)]
        frac = model.fraction_of_circuits_compromised([0], circuits)
        assert 0.0 <= frac <= 1.0
        with pytest.raises(ValueError):
            model.fraction_of_circuits_compromised([0], [])

    def test_observers_per_circuit_lengths(self, world):
        g, model = world
        circuits = [(90, 50, 60, 95)] * 3
        counts = model.observers_per_circuit(circuits, ObservationMode.EITHER)
        assert len(counts) == 3
        assert len(set(counts)) == 1  # identical circuits, identical counts

    def test_guard_as_observes_entry(self, world):
        g, model = world
        client, guard = 90, 50
        view = model.segment_view(client, guard)
        assert guard in view.forward and client in view.forward

    def test_route_cache_consistency(self, world):
        g, model = world
        first = model.path(90, 50)
        second = model.path(90, 50)
        assert first == second
