"""The warm session pool and its churn feed.

Pins the serving tier's three load-bearing claims:

- **single release** — LRU eviction (and close) releases each evicted
  session exactly once, never a pooled-and-still-borrowed one;
- **no torn epochs** — a query batch racing ``apply_events`` sees answers
  entirely from epoch N or entirely from epoch N+1, never a mix;
- **bit-identical serving** — at every epoch of an arbitrary event
  sequence, a pooled facade (and the live daemon in front of it) answers
  exactly like a cold facade rebuilt on a fresh engine with that epoch's
  exclusion set.
"""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.asgraph import TopologyConfig, generate_topology
from repro.asgraph.engine import RoutingEngine
from repro.serve.api import (
    BatchRequest,
    ExposureQuery,
    HijackQuery,
    PathQuery,
    encode,
)
from repro.serve.facade import QueryFacade, ResultCache
from repro.serve.pool import SessionPool, normalize_events

from tests.test_serve_daemon import DaemonHarness


def _links(graph):
    return sorted(tuple(sorted((a, b))) for a, b, _r in graph.links())


def _wire(response):
    """Wire-form results: the bit-identity currency."""
    return [encode(r) for r in response.results]


def _mixed_queries(graph):
    """One of each query kind, over fixed endpoints."""
    ases = sorted(graph.ases)
    c, g, e, d = ases[-1], ases[0], ases[1], ases[-2]
    return (
        PathQuery(src=c, dst=g),
        PathQuery(src=g, dst=d),
        HijackQuery(victim=g, attacker=e, clients=(c, d)),
        HijackQuery(victim=g, attacker=e, kind="more-specific-hijack"),
        HijackQuery(victim=d, attacker=c, kind="interception"),
        ExposureQuery(client=c, guard=g, exit=e, dest=d, adversaries=(e,)),
    )


class _CountingSession:
    """Wrap a session, counting release() calls."""

    def __init__(self, session):
        self._session = session
        self.releases = 0

    def release(self):
        self.releases += 1
        self._session.release()

    def __getattr__(self, name):
        return getattr(self._session, name)


class _CountingEngine:
    """A RoutingEngine whose sessions count their releases."""

    def __init__(self):
        self._engine = RoutingEngine()
        self.sessions = []

    def session(self, *args, **kwargs):
        wrapped = _CountingSession(self._engine.session(*args, **kwargs))
        self.sessions.append(wrapped)
        return wrapped

    def __getattr__(self, name):
        return getattr(self._engine, name)


class TestNormalizeEvents:
    def test_tuples_and_dicts_canonicalised(self, tiny_graph):
        a, b = _links(tiny_graph)[0]
        out = normalize_events(
            [("down", (b, a)), {"op": "up", "link": [a, b]}], tiny_graph
        )
        assert out == [("down", (a, b)), ("up", (a, b))]

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError, match="down"):
            normalize_events([("sideways", (1, 2))])

    def test_self_link_rejected(self):
        with pytest.raises(ValueError, match="equal"):
            normalize_events([("down", (3, 3))])

    def test_unknown_link_rejected(self, tiny_graph):
        ases = sorted(tiny_graph.ases)
        a = ases[0]
        stranger = max(ases) + 1000
        with pytest.raises(ValueError, match="not in topology"):
            normalize_events([("down", (a, stranger))], tiny_graph)
        non_neighbour = next(
            x for x in ases if x != a and x not in tiny_graph.neighbours(a)
        )
        with pytest.raises(ValueError, match="no link"):
            normalize_events([("down", (a, non_neighbour))], tiny_graph)


class TestSessionPool:
    def test_borrow_hit_miss_accounting(self, tiny_graph):
        pool = SessionPool(tiny_graph, engine=RoutingEngine(), cap=4)
        origin = sorted(tiny_graph.ases)[0]
        with pool.borrow(origin) as s:
            assert s.path(origin) == (origin,)
        with pool.borrow(origin) as s2:
            assert s2 is s
        stats = pool.stats()
        assert (stats.hits, stats.misses, stats.created) == (1, 1, 1)
        assert pool.keys() == [(origin,)]

    def test_key_for_canonical(self):
        assert SessionPool.key_for(7) == (7,)
        assert SessionPool.key_for((3, 1, 3)) == (1, 3)

    def test_lru_eviction_releases_exactly_once(self, tiny_graph):
        engine = _CountingEngine()
        pool = SessionPool(tiny_graph, engine=engine, cap=2)
        origins = sorted(tiny_graph.ases)[:5]
        for origin in origins:
            with pool.borrow(origin):
                pass
        assert len(pool) == 2
        assert pool.stats().evictions == 3
        released = [s for s in engine.sessions if s.released]
        assert len(released) == 3
        assert all(s.releases == 1 for s in released)
        # the two residents were never released
        assert all(s.releases == 0 for s in engine.sessions if not s.released)
        pool.close()
        assert all(s.releases == 1 for s in engine.sessions)
        with pytest.raises(RuntimeError, match="closed"):
            with pool.borrow(origins[0]):
                pass

    def test_concurrent_same_key_borrows_get_distinct_sessions(self, tiny_graph):
        engine = _CountingEngine()
        pool = SessionPool(tiny_graph, engine=engine, cap=4)
        origin = sorted(tiny_graph.ases)[0]
        with pool.borrow(origin) as outer:
            with pool.borrow(origin) as inner:
                assert inner is not outer
        # one of the two was retired on return, exactly once
        assert sum(s.releases for s in engine.sessions) == 1
        assert len(pool) == 1

    def test_error_path_returns_the_session(self, tiny_graph):
        pool = SessionPool(tiny_graph, engine=RoutingEngine(), cap=4)
        origin = sorted(tiny_graph.ases)[0]
        with pytest.raises(RuntimeError, match="boom"):
            with pool.borrow(origin):
                raise RuntimeError("boom")
        assert len(pool) == 1  # returned despite the raise
        with pool.borrow(origin) as session:
            assert not session.released

    def test_apply_events_bumps_epoch_even_when_empty(self, tiny_graph):
        pool = SessionPool(tiny_graph, engine=RoutingEngine())
        report = pool.apply_events([])
        assert (report.epoch, report.events, report.unchanged) == (1, 0, True)
        a, b = _links(tiny_graph)[0]
        report = pool.apply_events([("down", (a, b))])
        assert report.epoch == 2
        assert not report.unchanged
        assert frozenset((a, b)) in pool.excluded_links
        report = pool.apply_events([("up", (a, b))])
        assert report.epoch == 3
        assert pool.excluded_links == frozenset()

    def test_apply_events_proves_untouched_origins(self, tiny_graph):
        """Sessions whose routes survive churn come back as proven keys."""
        engine = RoutingEngine()
        pool = SessionPool(tiny_graph, engine=engine)
        origins = sorted(tiny_graph.ases)[:6]
        for origin in origins:
            with pool.borrow(origin):
                pass
        a, b = _links(tiny_graph)[0]
        report = pool.apply_events([("down", (a, b))])
        assert set(report.repaired_keys) | set(report.proven_keys) == {
            (o,) for o in origins
        }
        # proof check: a "proven" origin's paths really are unchanged
        cold = engine.outcome(
            tiny_graph,
            [origins[0]],
            excluded_links=[(a, b)] if (origins[0],) in report.proven_keys else None,
        )
        if (origins[0],) in report.proven_keys:
            baseline = RoutingEngine().outcome(tiny_graph, [origins[0]])
            for asn in sorted(tiny_graph.ases):
                assert cold.path(asn) == baseline.path(asn)


class TestCacheEpochVersioning:
    def test_only_unproven_dependencies_invalidated(self):
        cache = ResultCache()
        cache.put("a", {"k": "a"}, deps=((1,),))
        cache.put("b", {"k": "b"}, deps=((2,),))
        cache.put("both", {"k": "both"}, deps=((1,), (2,)))
        cache.put("nodeps", {"k": "nodeps"}, deps=())
        dropped = cache.advance_epoch(1, proven=[(1,)])
        # "a" survives; "b" and "both" depend on the unproven (2,);
        # "nodeps" has nothing vouching for it.
        assert dropped == 3
        assert cache.get("a") == {"k": "a"}
        assert cache.get("b") is None
        assert cache.get("both") is None
        assert cache.get("nodeps") is None
        assert cache.epoch == 1

    def test_keep_all_fast_path(self):
        cache = ResultCache()
        cache.put("a", {"k": "a"}, deps=())
        assert cache.advance_epoch(1, keep_all=True) == 0
        assert cache.get("a") == {"k": "a"}

    def test_epoch_cannot_move_backwards(self):
        cache = ResultCache()
        cache.advance_epoch(2)
        with pytest.raises(ValueError, match="backwards"):
            cache.advance_epoch(1)

    def test_snapshot_refuses_restore_across_epochs(self, tiny_graph, tmp_path):
        engine = RoutingEngine()
        fp = engine.fingerprint(tiny_graph)
        pool = SessionPool(tiny_graph, engine=engine)
        cache = ResultCache()
        facade = QueryFacade(tiny_graph, engine=engine, cache=cache, pool=pool)
        facade.execute_batch(BatchRequest(queries=_mixed_queries(tiny_graph)))
        snap = str(tmp_path / "epoch0.ckpt")
        cache.snapshot(snap, fp)

        facade.apply_events([])  # epoch 1, same topology
        with pytest.raises(ValueError, match="epoch has advanced"):
            cache.restore(snap, fp)

        # and the mirror image: a snapshot from the future
        ahead = str(tmp_path / "epoch1.ckpt")
        cache.snapshot(ahead, fp)
        with pytest.raises(ValueError, match="ahead of"):
            ResultCache().restore(ahead, fp)

    def test_snapshot_round_trips_deps(self, tiny_graph, tmp_path):
        engine = RoutingEngine()
        fp = engine.fingerprint(tiny_graph)
        pool = SessionPool(tiny_graph, engine=engine)
        cache = ResultCache()
        facade = QueryFacade(tiny_graph, engine=engine, cache=cache, pool=pool)
        queries = _mixed_queries(tiny_graph)
        facade.execute_batch(BatchRequest(queries=queries))
        snap = str(tmp_path / "cache.ckpt")
        cache.snapshot(snap, fp)

        restored = ResultCache()
        assert restored.restore(snap, fp) == len(cache)
        # restored deps still version the entries: an all-invalidating
        # bump empties both caches identically
        assert cache.advance_epoch(1) == restored.advance_epoch(1)
        assert len(restored) == len(cache)


def _cold_answers(graph, queries, excluded):
    """The cold reference: fresh engine, static exclusion set."""
    facade = QueryFacade(
        graph, engine=RoutingEngine(), excluded_links=excluded or None
    )
    return _wire(facade.execute_batch(BatchRequest(queries=queries)))


class TestBitIdenticalServing:
    def test_pooled_matches_cold_on_fresh_graph(self, tiny_graph):
        queries = _mixed_queries(tiny_graph)
        engine = RoutingEngine()
        pool = SessionPool(tiny_graph, engine=engine)
        facade = QueryFacade(tiny_graph, engine=engine, pool=pool)
        warm = _wire(facade.execute_batch(BatchRequest(queries=queries)))
        assert warm == _cold_answers(tiny_graph, queries, frozenset())

    @settings(deadline=None, max_examples=12)
    @given(data=st.data())
    def test_event_sequence_property(self, tiny_graph, data):
        """At every epoch, pooled answers == cold recompute answers."""
        links = _links(tiny_graph)
        queries = _mixed_queries(tiny_graph)
        engine = RoutingEngine()
        pool = SessionPool(tiny_graph, engine=engine)
        cache = ResultCache()
        facade = QueryFacade(tiny_graph, engine=engine, cache=cache, pool=pool)

        num_epochs = data.draw(st.integers(min_value=1, max_value=4))
        excluded = set()
        for _ in range(num_epochs):
            events = data.draw(
                st.lists(
                    st.tuples(
                        st.sampled_from(["down", "up"]),
                        st.sampled_from(links[:30]),
                    ),
                    max_size=3,
                )
            )
            report = facade.apply_events(events)
            for op, link in normalize_events(events):
                if op == "down":
                    excluded.add(frozenset(link))
                else:
                    excluded.discard(frozenset(link))
            assert pool.excluded_links == frozenset(excluded)
            warm = _wire(facade.execute_batch(BatchRequest(queries=queries)))
            assert warm == _cold_answers(tiny_graph, queries, excluded), (
                f"divergence at epoch {report.epoch}, "
                f"excluded {sorted(map(sorted, excluded))}"
            )

    def test_cache_hit_serves_current_epoch_answers(self, tiny_graph):
        """Invalidation is precise: surviving entries are still correct."""
        queries = _mixed_queries(tiny_graph)
        engine = RoutingEngine()
        pool = SessionPool(tiny_graph, engine=engine)
        cache = ResultCache()
        facade = QueryFacade(tiny_graph, engine=engine, cache=cache, pool=pool)
        facade.execute_batch(BatchRequest(queries=queries))
        a, b = _links(tiny_graph)[0]
        facade.apply_events([("down", (a, b))])
        warm = _wire(facade.execute_batch(BatchRequest(queries=queries)))
        assert warm == _cold_answers(tiny_graph, queries, {frozenset((a, b))})
        facade.apply_events([("up", (a, b))])
        warm = _wire(facade.execute_batch(BatchRequest(queries=queries)))
        assert warm == _cold_answers(tiny_graph, queries, frozenset())

    def test_unaffected_entries_survive_churn(self, tiny_graph):
        """Churn far from a query's origins must not evict its cache entry."""
        engine = RoutingEngine()
        pool = SessionPool(tiny_graph, engine=engine)
        cache = ResultCache()
        facade = QueryFacade(tiny_graph, engine=engine, cache=cache, pool=pool)
        ases = sorted(tiny_graph.ases)
        queries = tuple(PathQuery(src=ases[-1], dst=dst) for dst in ases[:8])
        facade.execute_batch(BatchRequest(queries=queries))
        entries_before = len(cache)
        assert entries_before == len(queries)

        # find a link whose failure provably spares at least one pooled origin
        for link in _links(tiny_graph):
            report = facade.apply_events([("down", link)])
            if report.proven_keys and report.repaired_keys:
                break
            facade.apply_events([("up", link)])
        else:
            pytest.skip("no link distinguishes the pooled origins")

        assert len(cache) == len(report.proven_keys)
        assert report.invalidated == entries_before - len(report.proven_keys)
        hits_before = cache.hits
        facade.execute_batch(BatchRequest(queries=queries))
        # the surviving entries answered from cache
        assert cache.hits == hits_before + len(report.proven_keys)


class TestTornEpochs:
    def test_batches_never_mix_epochs(self, tiny_graph):
        """Readers racing apply_events see epoch N or N+1, never both."""
        links = _links(tiny_graph)
        queries = _mixed_queries(tiny_graph)
        # pick a link whose failure actually changes some answer
        flip = None
        even = _cold_answers(tiny_graph, queries, frozenset())
        for link in links:
            odd = _cold_answers(tiny_graph, queries, {frozenset(link)})
            if odd != even:
                flip = link
                break
        assert flip is not None, "no link changes any answer"

        engine = RoutingEngine()
        pool = SessionPool(tiny_graph, engine=engine)
        facade = QueryFacade(tiny_graph, engine=engine, pool=pool)
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                got = _wire(
                    facade.execute_batch(BatchRequest(queries=queries))
                )
                if got != even and got != odd:
                    failures.append(got)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(12):
                facade.apply_events([("down", flip)])
                facade.apply_events([("up", flip)])
        finally:
            stop.set()
            for t in threads:
                t.join(30)
        assert not failures, "a batch mixed answers from two epochs"


class TestDaemonChurn:
    def test_apply_events_over_the_wire(self, tiny_graph):
        harness = DaemonHarness(tiny_graph).start()
        try:
            queries = _mixed_queries(tiny_graph)
            a, b = _links(tiny_graph)[0]
            with harness.connect() as client:
                report = client.apply_events([("down", (a, b))])
                assert report["epoch"] == 1
                assert report["excluded"] == [[a, b]]
                response = client.batch(queries)
                assert _wire(response) == _cold_answers(
                    tiny_graph, queries, {frozenset((a, b))}
                )
                stats = client.stats()
                assert stats["pool"]["epoch"] == 1
                assert stats["pool"]["excluded"] == [[a, b]]
                report = client.apply_events([{"op": "up", "link": [a, b]}])
                assert report["epoch"] == 2
                assert report["excluded"] == []
                response = client.batch(queries)
                assert _wire(response) == _cold_answers(
                    tiny_graph, queries, frozenset()
                )
        finally:
            harness.stop()

    def test_bad_events_are_an_error_response(self, tiny_graph):
        harness = DaemonHarness(tiny_graph).start()
        try:
            with harness.connect() as client:
                with pytest.raises(Exception, match="down"):
                    client.request(
                        "apply-events",
                        events=[{"op": "sideways", "link": [1, 2]}],
                    )
                # the daemon survived and did not bump the epoch
                assert client.stats()["pool"]["epoch"] == 0
        finally:
            harness.stop()
