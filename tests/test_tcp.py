"""Tests for the discrete-event TCP model."""

import pytest

from repro.traffic.eventloop import EventLoop
from repro.traffic.tcp import TcpConfig, TcpConnection


def run_transfer(size, config=None, reader="auto"):
    """Transfer ``size`` bytes; returns (connection, loop)."""
    loop = EventLoop()
    conn = TcpConnection(
        loop,
        config or TcpConfig(),
        on_readable=(lambda c: c.read()) if reader == "auto" else reader,
    )
    conn.write(size)
    conn.close_writer()
    loop.run()  # drain; loop.now ends at the last event (completion time)
    return conn, loop


class TestDelivery:
    def test_delivers_exact_byte_count(self):
        conn, _loop = run_transfer(1_000_000)
        assert conn.finished
        assert conn.rcv_nxt == 1_000_000
        assert conn.bytes_acked == 1_000_000

    def test_small_transfer(self):
        conn, _ = run_transfer(100)
        assert conn.finished
        assert conn.rcv_nxt == 100

    def test_zero_bytes(self):
        conn, _ = run_transfer(0)
        assert conn.finished

    def test_multiple_writes_accumulate(self):
        loop = EventLoop()
        conn = TcpConnection(loop, on_readable=lambda c: c.read())
        conn.write(500)
        conn.write(1500)
        conn.close_writer()
        loop.run(until=60)
        assert conn.rcv_nxt == 2000
        assert conn.finished

    def test_write_after_close_rejected(self):
        loop = EventLoop()
        conn = TcpConnection(loop)
        conn.close_writer()
        with pytest.raises(RuntimeError):
            conn.write(10)

    def test_negative_write_rejected(self):
        loop = EventLoop()
        conn = TcpConnection(loop)
        with pytest.raises(ValueError):
            conn.write(-1)


class TestCongestionAndLoss:
    def test_completes_under_loss(self):
        conn, _ = run_transfer(500_000, TcpConfig(loss_prob=0.02, seed=3))
        assert conn.finished
        assert conn.retransmissions > 0

    def test_completes_under_heavy_loss(self):
        conn, _ = run_transfer(100_000, TcpConfig(loss_prob=0.15, seed=5))
        assert conn.finished

    def test_no_retransmissions_without_loss(self):
        conn, _ = run_transfer(500_000, TcpConfig(loss_prob=0.0))
        assert conn.retransmissions == 0

    def test_loss_slows_transfer(self):
        _, loop_clean = run_transfer(400_000, TcpConfig(loss_prob=0.0))
        _, loop_lossy = run_transfer(400_000, TcpConfig(loss_prob=0.05, seed=9))
        assert loop_lossy.now > loop_clean.now

    def test_throughput_bounded_by_link_rate(self):
        cfg = TcpConfig(rate=1_000_000.0, latency=0.01)
        conn, loop = run_transfer(2_000_000, cfg)
        assert conn.finished
        assert loop.now >= 2_000_000 / 1_000_000.0  # can't beat the wire

    def test_slow_start_ramps(self):
        """Early round trips should carry exponentially more data."""
        loop = EventLoop()
        arrivals = []
        conn = TcpConnection(
            loop,
            TcpConfig(latency=0.05, rate=100e6),
            on_readable=lambda c: c.read(),
            on_data_arrived=lambda t, seq: arrivals.append((t, seq)),
        )
        conn.write(2_000_000)
        conn.close_writer()
        loop.run(until=2.0)
        first_rtt = [seq for t, seq in arrivals if t < 0.12]
        third_rtt = [seq for t, seq in arrivals if 0.25 < t < 0.37]
        assert third_rtt and first_rtt
        assert len(third_rtt) > 2 * len(first_rtt)


class TestFlowControl:
    def test_slow_reader_backpressures_sender(self):
        """If the app never reads, the sender must stall at the buffer."""
        loop = EventLoop()
        conn = TcpConnection(loop, TcpConfig(rcv_buffer=64 * 1024))
        conn.write(1_000_000)
        conn.close_writer()
        loop.run(until=30.0)
        assert not conn.finished
        assert conn.rcv_nxt <= 64 * 1024 + 1460

    def test_reader_draining_resumes_flow(self):
        loop = EventLoop()
        conn = TcpConnection(loop, TcpConfig(rcv_buffer=64 * 1024))
        conn.write(500_000)
        conn.close_writer()
        loop.run(until=5.0)
        stalled_at = conn.rcv_nxt
        # now attach a drain loop via polling reads
        def drain():
            conn.read()
            if not conn.finished:
                loop.schedule(0.05, drain)
        loop.schedule(0.0, drain)
        loop.run(until=120.0)
        assert conn.finished
        assert conn.rcv_nxt == 500_000 > stalled_at


class TestObservationHooks:
    def test_cumulative_monotonicity(self):
        loop = EventLoop()
        sent, acked = [], []
        conn = TcpConnection(
            loop,
            TcpConfig(loss_prob=0.03, seed=7),
            on_readable=lambda c: c.read(),
            on_data_sent=lambda t, seq: sent.append(seq),
            on_ack_arrived=lambda t, ack: acked.append(ack),
        )
        conn.write(300_000)
        conn.close_writer()
        loop.run(until=120)
        assert conn.finished
        assert max(sent) == 300_000
        # ACK sequence is non-decreasing once the running max is applied
        running = 0
        for a in acked:
            running = max(running, a)
        assert running == 300_000

    def test_delayed_acks_reduce_ack_volume(self):
        conn, _ = run_transfer(500_000)
        # cumulative + delayed ACKs: far fewer ACKs than data packets
        assert conn.acks_sent < conn.data_packets_sent

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TcpConfig(mss=0)
        with pytest.raises(ValueError):
            TcpConfig(rate=0)
        with pytest.raises(ValueError):
            TcpConfig(loss_prob=1.0)
        with pytest.raises(ValueError):
            TcpConfig(rcv_buffer=100)
