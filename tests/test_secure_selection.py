"""Tests for the real-time monitoring framework (the paper's future work)."""

import random

import pytest

from repro.core.countermeasures import MonitorConfig
from repro.core.secure_selection import (
    AttackEvent,
    AttackSchedule,
    MonitoringFramework,
    evaluate_secure_selection,
)


@pytest.fixture(scope="module")
def campaign(small_scenario):
    # module-scoped trace: this test file replays streams several times
    trace = small_scenario.run_trace()
    rng = random.Random(5)
    schedule = AttackSchedule.random_campaign(
        trace, attacker_asn=small_scenario.adversary_as(), num_attacks=8, rng=rng
    )
    return trace, schedule


class TestAttackSchedule:
    def test_random_campaign_structure(self, campaign):
        trace, schedule = campaign
        assert len(schedule.events) == 8
        for event in schedule.events:
            assert event.prefix in trace.tor_prefixes
            assert 0 < event.start < trace.duration
            assert event.end > event.start

    def test_active_prefixes_windows(self):
        from repro.analysis.prefixes import Prefix

        p = Prefix.parse("10.0.0.0/24")
        schedule = AttackSchedule([AttackEvent(start=100.0, prefix=p, attacker_asn=9, end=200.0)])
        assert schedule.active_prefixes(50.0) == frozenset()
        assert schedule.active_prefixes(150.0) == {p}
        assert schedule.active_prefixes(250.0) == frozenset()

    def test_bogus_records_reach_carrying_sessions(self, campaign):
        trace, schedule = campaign
        records = schedule.bogus_records(trace.collector_sessions, trace)
        assert records
        for session, record in records:
            assert record.prefix in trace.session_prefixes[session]
            assert record.as_path[0] == session[1]

    def test_too_many_attacks_rejected(self, campaign):
        trace, _ = campaign
        with pytest.raises(ValueError):
            AttackSchedule.random_campaign(
                trace, 1, len(trace.tor_prefixes) + 1, random.Random(0)
            )


class TestMonitoringFramework:
    def test_replay_required(self, campaign):
        trace, _schedule = campaign
        framework = MonitoringFramework(trace)
        with pytest.raises(RuntimeError):
            framework.suspected_at(0.0)

    def test_detects_attacks_with_latency(self, campaign):
        trace, schedule = campaign
        framework = MonitoringFramework(trace)
        framework.replay(schedule)
        latency = framework.detection_latency(schedule)
        detected = [v for v in latency.values() if v is not None]
        assert len(detected) >= 0.7 * len(schedule.events)
        for value in detected:
            assert 0 <= value < 600  # bogus routes show up within minutes

    def test_suspected_set_is_monotone_in_time(self, campaign):
        trace, schedule = campaign
        framework = MonitoringFramework(trace)
        framework.replay(schedule)
        t1 = trace.duration * 0.3
        t2 = trace.duration * 0.9
        assert framework.suspected_at(t1) <= framework.suspected_at(t2)

    def test_no_attacks_no_origin_alerts(self, campaign):
        """Without injected hijacks the trace carries only legitimate
        origins, so new-origin alerts must be absent (TE churn keeps the
        true origin)."""
        trace, _schedule = campaign
        framework = MonitoringFramework(trace)
        framework.replay(schedule=None)
        kinds = {a.kind for a in framework.monitor.alerts}
        assert "new-origin" not in kinds


class TestDetectionAccounting:
    def test_preattack_false_positive_does_not_mask_detection(self, campaign):
        """Regression: a benign alert on a prefix *before* the attack must
        not hide the real detection that happens during the attack."""
        from repro.analysis.prefixes import Prefix
        from repro.bgpsim.collector import UpdateRecord

        trace, _ = campaign
        framework = MonitoringFramework(trace)
        prefix = sorted(trace.tor_prefixes, key=str)[0]
        origin = trace.prefix_origins[prefix]
        attack_start = trace.duration * 0.5
        schedule = AttackSchedule(
            [AttackEvent(start=attack_start, prefix=prefix, attacker_asn=424242)]
        )
        framework.replay(schedule=None)  # only benign traffic in first_alert
        # Manually inject a benign pre-attack alert and an in-attack alert.
        session = trace.collector_sessions[0]
        framework.monitor.observe(
            UpdateRecord(trace.duration * 0.9, prefix, (session[1], 424242)),
            session=session,
        )
        # first_alert may hold a pre-attack timestamp; the latency query
        # must still find the in-attack alert.
        latency = framework.detection_latency(schedule)
        assert latency[prefix] is not None
        assert latency[prefix] >= 0


class TestEvaluation:
    def test_protection_reduces_vulnerability(self, small_scenario, campaign):
        trace, schedule = campaign
        clients = small_scenario.client_ases(4)
        report = evaluate_secure_selection(
            small_scenario.tor,
            trace,
            schedule,
            clients,
            circuits_per_client=15,
            seed=3,
        )
        assert report.circuits_built > 0
        assert report.protected_rate <= report.baseline_rate
        assert report.detected_attacks >= 0.7 * report.total_attacks
        if report.mean_detection_latency is not None:
            assert report.mean_detection_latency < 600

    def test_report_rates_bounded(self, small_scenario, campaign):
        trace, schedule = campaign
        report = evaluate_secure_selection(
            small_scenario.tor,
            trace,
            schedule,
            small_scenario.client_ases(2),
            circuits_per_client=5,
            seed=4,
        )
        assert 0.0 <= report.protected_rate <= 1.0
        assert 0.0 <= report.baseline_rate <= 1.0
