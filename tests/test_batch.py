"""Equivalence and API tests for the multi-origin batch kernel.

``compute_routes_many`` must be invisible per row: element-wise identical
to ``compute_routes_fast`` — lengths, parents, kinds, seeds, tiebreaks —
for every combination of origin sets, excluded links, export scopes and
(shared or per-row) early-exit targets.  The property test sweeps random
Internets through random batch shapes; the unit tests pin the
``BatchOutcome`` API, the input validation, and the loop fallback.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asgraph import (
    ASGraph,
    BatchOutcome,
    CompactOutcome,
    TopologyConfig,
    compute_routes_fast,
    compute_routes_many,
    generate_topology,
)
from repro.asgraph.batch import VECTOR_BACKEND
from repro.asgraph.index import graph_index


def diamond() -> ASGraph:
    g = ASGraph()
    g.add_peer_link(1, 2)
    g.add_provider_link(customer=3, provider=1)
    g.add_provider_link(customer=3, provider=2)
    g.add_provider_link(customer=4, provider=3)
    return g


def assert_row_matches(batch, row, fast, graph):
    """Row ``row`` of ``batch`` must equal the per-origin ``fast`` outcome
    element-wise (seeds compared at routed nodes only: single-seed batch
    rows share one all-zeros seed array, and no reader ever consults the
    seed of an unrouted node)."""
    got = batch.outcome(row)
    assert isinstance(got, CompactOutcome)
    n = len(fast._plen)
    for i in range(n):
        assert int(got._plen[i]) == fast._plen[i], (row, i)
        assert int(got._parent[i]) == fast._parent[i], (row, i)
        assert int(got._kind[i]) == fast._kind[i], (row, i)
        if fast._plen[i]:
            assert int(got._seed[i]) == fast._seed[i], (row, i)
    assert got.origins == fast.origins
    assert len(got) == len(fast)
    for asn in sorted(graph.ases)[::9]:
        assert got.path(asn) == fast.path(asn), (row, asn)


class TestEquivalenceProperty:
    @settings(deadline=None, max_examples=30)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.randoms(use_true_random=False),
    )
    def test_batch_matches_per_origin_fast(self, seed, rng):
        """Random topologies x random origin sets / excluded links /
        export scopes / shared-or-per-row targets: each batch row equals
        its own ``compute_routes_fast`` run, tiebreaks included."""
        g = generate_topology(
            TopologyConfig(num_ases=90, num_tier1=3, num_tier2=15, seed=seed)
        )
        ases = sorted(g.ases)

        specs = []
        for _ in range(rng.randint(1, 6)):
            k = 2 if rng.random() < 0.25 else 1
            specs.append(tuple(sorted(rng.sample(ases, k))))

        excluded = None
        if rng.random() < 0.5:
            links = [frozenset((a, b)) for a, b, _ in g.links()]
            excluded = rng.sample(links, min(len(links), rng.randint(1, 6)))

        scopes = None
        if rng.random() < 0.4:
            scoped = rng.choice(sorted({a for s in specs for a in s}))
            nbrs = sorted(g.neighbours(scoped))
            if nbrs:
                scopes = {
                    scoped: frozenset(rng.sample(nbrs, rng.randint(1, len(nbrs))))
                }

        targets = None
        shape = rng.random()
        if shape < 0.3:
            targets = frozenset(rng.sample(ases, rng.randint(1, 5)))
        elif shape < 0.6:
            targets = [
                frozenset(rng.sample(ases, rng.randint(1, 5)))
                if rng.random() < 0.7
                else None
                for _ in specs
            ]

        batch = compute_routes_many(
            g,
            specs,
            targets=targets,
            excluded_links=excluded,
            origin_export_scopes=scopes,
        )
        assert len(batch) == len(specs)
        for row, spec in enumerate(specs):
            row_scopes = {
                a: s for a, s in (scopes or {}).items() if a in spec
            }
            if targets is None or isinstance(targets, frozenset):
                row_targets = targets
            else:
                row_targets = targets[row]
            fast = compute_routes_fast(
                g,
                spec,
                excluded_links=excluded,
                origin_export_scopes=row_scopes or None,
                targets=row_targets,
            )
            assert_row_matches(batch, row, fast, g)

    def test_backends_agree(self):
        """The loop fallback and the vector kernel produce the same rows
        (trivially true where numpy is absent and only "loop" runs)."""
        g = generate_topology(
            TopologyConfig(num_ases=80, num_tier1=3, num_tier2=15, seed=11)
        )
        ases = sorted(g.ases)
        specs = [(a,) for a in ases[::7]]
        loop = compute_routes_many(g, specs, backend="loop")
        default = compute_routes_many(g, specs)
        for row in range(len(specs)):
            want = loop.outcome(row)
            assert_row_matches(default, row, want, g)


class TestBatchOutcomeAPI:
    def test_views_are_memoised_and_ordered(self):
        g = diamond()
        batch = compute_routes_many(g, [1, 2, (3, 4)])
        assert len(batch) == 3
        assert batch.origins(2) == (3, 4)
        first = batch.outcome(0)
        assert batch.outcome(0) is first
        materialised = batch.outcomes()
        assert materialised[0] is first
        assert [o.origins for o in batch] == [(1,), (2,), (3, 4)]

    def test_bad_row_raises(self):
        batch = compute_routes_many(diamond(), [1])
        with pytest.raises(IndexError):
            batch.outcome(5)

    def test_rows_match_capture_set_api(self):
        g = diamond()
        batch = compute_routes_many(g, [(1, 4)])
        fast = compute_routes_fast(g, (1, 4))
        got = batch.outcome(0)
        for origin in (1, 4):
            assert got.capture_set(origin) == fast.capture_set(origin)


class TestValidation:
    def test_empty_origins_rejected(self):
        with pytest.raises(ValueError, match="at least one origin"):
            compute_routes_many(diamond(), [])

    def test_unknown_origin_rejected(self):
        with pytest.raises(ValueError, match="AS99"):
            compute_routes_many(diamond(), [99])

    def test_forged_paths_rejected(self):
        with pytest.raises(ValueError, match="forged announced paths"):
            compute_routes_many(diamond(), [{4: (4, 3)}])

    def test_scope_for_non_origin_rejected(self):
        with pytest.raises(ValueError, match="non-origin AS2"):
            compute_routes_many(
                diamond(), [1], origin_export_scopes={2: frozenset({1})}
            )

    def test_targets_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="2 entries for 1 rows"):
            compute_routes_many(
                diamond(), [1], targets=[frozenset({3}), frozenset({4})]
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown batch backend"):
            compute_routes_many(diamond(), [1], backend="simd")

    def test_loop_backend_needs_the_graph(self):
        gi = graph_index(diamond())
        with pytest.raises(RuntimeError, match="needs the ASGraph"):
            compute_routes_many(gi, [1], backend="loop")

    @pytest.mark.skipif(
        VECTOR_BACKEND != "vector", reason="vector backend requires numpy"
    )
    def test_vector_backend_accepts_bare_index(self):
        g = diamond()
        batch = compute_routes_many(graph_index(g), [1])
        fast = compute_routes_fast(g, (1,))
        assert_row_matches(batch, 0, fast, g)
