"""Tests for the weighted client-AS sampler."""

import random

import pytest

from repro.runner import Trial, spawn_trial_seed
from repro.tor.clientdist import ClientASDistribution


class TestConstruction:
    def test_uniform(self):
        dist = ClientASDistribution.uniform([10, 20, 30])
        assert dist.ases == (10, 20, 30)
        assert dist.weights == (1.0, 1.0, 1.0)

    def test_zipf_weights_decay_in_list_order(self):
        dist = ClientASDistribution.zipf([5, 4, 3, 2], exponent=1.5)
        assert dist.ases == (5, 4, 3, 2)
        assert all(a > b for a, b in zip(dist.weights, dist.weights[1:]))
        assert dist.weights[0] == 1.0

    def test_zipf_zero_exponent_is_uniform(self):
        dist = ClientASDistribution.zipf([1, 2, 3], exponent=0.0)
        assert dist.weights == (1.0, 1.0, 1.0)

    def test_from_weights_sorts_by_asn(self):
        dist = ClientASDistribution.from_weights({30: 1.0, 10: 5.0, 20: 2.0})
        assert dist.ases == (10, 20, 30)
        assert dist.weights == (5.0, 2.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientASDistribution(ases=(), weights=())
        with pytest.raises(ValueError):
            ClientASDistribution(ases=(1, 2), weights=(1.0,))
        with pytest.raises(ValueError):
            ClientASDistribution(ases=(1, 1), weights=(1.0, 1.0))
        with pytest.raises(ValueError):
            ClientASDistribution(ases=(1, 2), weights=(1.0, 0.0))
        with pytest.raises(ValueError):
            ClientASDistribution.zipf([1, 2], exponent=-1.0)


class TestSampling:
    def test_cumulative_monotone_and_normalised(self):
        dist = ClientASDistribution.zipf([7, 8, 9], exponent=1.0)
        cum = dist.cumulative()
        assert all(a < b for a, b in zip(cum, cum[1:]))
        assert cum[-1] == pytest.approx(1.0)

    def test_pick_covers_quantiles(self):
        dist = ClientASDistribution.from_weights({1: 1.0, 2: 1.0})
        assert dist.pick(0.0) == 1
        assert dist.pick(0.49) == 1
        assert dist.pick(0.51) == 2
        assert dist.pick(0.999999) == 2

    def test_sample_skews_towards_heavy_ases(self):
        dist = ClientASDistribution.zipf(list(range(100, 120)), exponent=1.5)
        sample = dist.sample(4000, random.Random(7))
        counts = {asn: sample.count(asn) for asn in dist.ases}
        assert counts[100] > counts[119] * 3

    def test_sample_validation(self):
        dist = ClientASDistribution.uniform([1])
        with pytest.raises(ValueError):
            dist.sample(-1, random.Random(0))
        assert dist.sample(0, random.Random(0)) == []

    def test_seed_stable_through_trial_rng(self):
        dist = ClientASDistribution.zipf([11, 22, 33, 44], exponent=1.0)

        def trial(index):
            seed = spawn_trial_seed(9, "clientdist", "roster")
            return Trial(index=index, id="roster", params=None, seed=seed)

        first = dist.sample(50, trial(0).rng())
        # A different index (a reshard) must not change the draws.
        second = dist.sample(50, trial(3).rng())
        assert first == second
        assert set(first) <= set(dist.ases)
