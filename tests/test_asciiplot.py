"""Tests for the ASCII figure renderer."""

import pytest

from repro.analysis.asciiplot import plot_ccdf, plot_series, plot_xy


class TestPlotXY:
    def test_renders_points(self):
        out = plot_xy([(1, 1), (2, 4), (3, 9)], title="squares", xlabel="x", ylabel="y")
        assert "squares" in out
        assert "o" in out
        assert "x: x" in out and "y: y" in out

    def test_log_axis(self):
        out = plot_xy([(1, 0.5), (10, 0.3), (1000, 0.1)], logx=True)
        assert "(log)" not in out  # only shown with xlabel
        out2 = plot_xy([(1, 0.5), (1000, 0.1)], logx=True, xlabel="ratio")
        assert "(log)" in out2

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            plot_xy([(0, 1)], logx=True)

    def test_constant_series_does_not_crash(self):
        out = plot_xy([(1, 5), (2, 5)])
        assert "|" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            plot_series([])
        with pytest.raises(ValueError):
            plot_series([[]])

    def test_tiny_area_rejected(self):
        with pytest.raises(ValueError):
            plot_xy([(1, 1)], width=2, height=2)


class TestPlotSeries:
    def test_distinct_glyphs_and_legend(self):
        a = [(0, 0), (1, 1)]
        b = [(0, 1), (1, 0)]
        out = plot_series([a, b], labels=["up", "down"])
        assert "o=up" in out and "x=down" in out
        assert "o" in out and "x" in out

    def test_dimensions(self):
        out = plot_series([[(0, 0), (1, 1)]], width=30, height=6)
        body_rows = [l for l in out.splitlines() if "|" in l]
        assert len(body_rows) == 6


class TestCcdf:
    def test_percent_scale(self):
        out = plot_ccdf([(1, 1.0), (10, 0.5), (100, 0.1)], title="fig3")
        assert "fig3" in out
        assert "100.00" in out  # y axis shows percentages

    def test_with_real_ccdf(self):
        from repro.analysis.stats import Ccdf

        ccdf = Ccdf.from_samples([1, 2, 2, 5, 30, 100])
        out = plot_ccdf(list(ccdf.points))
        assert "|" in out
