"""Soundness tests for the trace engine's relevance-filtered route cache.

The engine caches vantage paths keyed only on the *relevant* excluded
links (a fixpoint), not the full global exclusion state.  These tests pin
the correctness claim: the filtered result must equal a direct
Gao-Rexford computation under the full exclusion set, for arbitrary
exclusion sets.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.analysis.prefixes import Prefix
from repro.asgraph import TopologyConfig, compute_routes, generate_topology
from repro.bgpsim.trace import TraceConfig, TraceEngine


def build_engine(seed=0):
    graph = generate_topology(
        TopologyConfig(num_ases=80, num_tier1=3, num_tier2=15, seed=seed)
    )
    prefixes = {Prefix.parse(f"10.0.{i}.0/24"): 40 + i for i in range(10)}
    engine = TraceEngine(
        graph,
        prefixes,
        tor_prefixes=list(prefixes)[:5],
        config=TraceConfig(
            sessions_per_collector=4, collector_names=("rrc00",), seed=seed
        ),
    )
    # run() normally initialises the vantage set; do it manually here.
    collectors = engine._build_collectors()
    engine._vantages = sorted({s.peer_asn for c in collectors for s in c.sessions})
    engine._vantage_targets = frozenset(engine._vantages)
    return graph, engine


@pytest.fixture(scope="module")
def world():
    return build_engine(seed=3)


class TestFilteredCacheSoundness:
    def test_no_exclusions_matches_direct(self, world):
        graph, engine = world
        paths, links = engine._vantage_paths(45, frozenset(), frozenset())
        direct = compute_routes(graph, [45])
        for vantage in engine._vantages:
            assert paths[vantage] == direct.path(vantage)

    @settings(deadline=None, max_examples=25)
    @given(
        origin=st.integers(min_value=40, max_value=49),
        num_excluded=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_filtered_equals_full_exclusion(self, origin, num_excluded, seed):
        graph, engine = build_engine(seed=3)
        rng = random.Random(seed)
        links = [frozenset((a, b)) for a, b, _r in graph.links()]
        excluded = frozenset(rng.sample(links, min(num_excluded, len(links))))
        # local = the subset touching the origin (how the engine calls it)
        local = frozenset(l for l in excluded if origin in l)

        paths, _used = engine._vantage_paths(origin, local, excluded)
        direct = compute_routes(graph, [origin], excluded_links=excluded)
        for vantage in engine._vantages:
            assert paths[vantage] == direct.path(vantage), (
                f"origin {origin}, excluded {sorted(map(sorted, excluded))}, "
                f"vantage {vantage}"
            )

    def test_cache_reuse_across_irrelevant_core_states(self, world):
        """A core exclusion far from the origin must not add cache keys."""
        graph, engine = world
        engine._route_cache.clear()
        origin = 45
        paths_a, _ = engine._vantage_paths(origin, frozenset(), frozenset())
        baseline_keys = len(engine._route_cache)
        # exclude a link used by nobody's path to this origin
        used = set()
        for path in paths_a.values():
            if path:
                used.update(frozenset(p) for p in zip(path, path[1:]))
        unused_link = next(
            frozenset((a, b))
            for a, b, _r in graph.links()
            if frozenset((a, b)) not in used and origin not in (a, b)
        )
        paths_b, _ = engine._vantage_paths(origin, frozenset(), frozenset({unused_link}))
        assert paths_b == paths_a
        assert len(engine._route_cache) == baseline_keys, "irrelevant link added a key"

    def test_canonical_detour_deterministic(self, world):
        _graph, engine = world
        paths, _ = engine._vantage_paths(45, frozenset(), frozenset())
        assert engine._canonical_detour(paths) == engine._canonical_detour(dict(paths))

    def test_canonical_detour_none_for_trivial_paths(self, world):
        _graph, engine = world
        assert engine._canonical_detour({1: None}) is None
        assert engine._canonical_detour({1: (1,)}) is None


class TestSessionLRURelease:
    """Eviction from the trace engine's shared session pool must actually
    release the evicted sessions (undo log, children index, label arrays)
    and tick the eviction counter exactly once per evicted origin."""

    CAP = 3

    def churn(self, num_origins):
        graph = generate_topology(
            TopologyConfig(num_ases=80, num_tier1=3, num_tier2=15, seed=3)
        )
        prefixes = {Prefix.parse(f"10.0.{i}.0/24"): 40 + i for i in range(10)}
        engine = TraceEngine(
            graph,
            prefixes,
            tor_prefixes=list(prefixes)[:5],
            config=TraceConfig(
                sessions_per_collector=4,
                collector_names=("rrc00",),
                seed=3,
                session_cache_cap=self.CAP,
            ),
        )
        origins = sorted(graph.ases)[: num_origins]
        recorder = obs.Recorder()
        previous = obs.set_recorder(recorder)
        try:
            created = {}
            for origin in origins:
                with engine._pool.borrow(origin) as session:
                    created[origin] = session
        finally:
            obs.set_recorder(previous)
        return engine, origins, created, recorder.snapshot().counters

    def test_counter_ticks_once_per_evicted_origin(self):
        engine, origins, _created, counters = self.churn(10)
        assert counters["trace.sessions.created"] == len(origins)
        assert counters["trace.sessions.evictions"] == len(origins) - self.CAP
        assert len(engine._pool) == self.CAP

    def test_evicted_sessions_are_released(self):
        engine, origins, created, _counters = self.churn(10)
        live = {key[0] for key in engine._pool.keys()}
        assert live == set(origins[-self.CAP :])
        for origin, session in created.items():
            if origin in live:
                assert not session.released
                assert session.path(origin) == (origin,)
            else:
                assert session.released
                with pytest.raises(RuntimeError, match="released"):
                    session.path(origin)
                with pytest.raises(RuntimeError, match="released"):
                    session.exclude_link((origin, origin + 1))

    def test_readmission_builds_a_fresh_session(self):
        engine, origins, created, _counters = self.churn(10)
        evicted_origin = origins[0]
        assert (evicted_origin,) not in engine._pool.keys()
        with engine._pool.borrow(evicted_origin) as fresh:
            assert fresh is not created[evicted_origin]
            assert not fresh.released
            assert fresh.path(evicted_origin) == (evicted_origin,)
