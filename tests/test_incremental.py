"""Tests for the incremental routing session (repro.asgraph.incremental).

The load-bearing property: after ANY sequence of exclude/restore events, a
:class:`DynamicRoutingSession` holds exactly the state a fresh
:func:`compute_routes_fast` would produce for the same exclusion set —
paths, kinds, and tiebreaks.  Hypothesis drives random event schedules over
generated topologies; hand-built graphs pin the adversarial repair cases
(the improve-detach cascade, where a detached node's route *shortens* while
degrading rank and steals an intact provider-kind subtree, including the
equal-length lower-index tiebreak variant); further tests cover the undo
fast path, forged-tail/export-scope sessions, graph-mutation recovery, the
engine session API, and the trace-layer integration (session-backed cache,
LRU bounds, link reverse index).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.analysis.prefixes import Prefix
from repro.asgraph import (
    ASGraph,
    DynamicRoutingSession,
    RecomputeSession,
    RouteKind,
    RoutingEngine,
    TopologyConfig,
    compute_routes_fast,
    generate_topology,
)
from repro.bgpsim.trace import TraceConfig, TraceEngine
from repro.obs import Recorder


def assert_matches_fresh(session):
    """Session state must equal a fresh kernel run on its exclusion set."""
    fresh = compute_routes_fast(
        session.graph,
        session._seeds,
        excluded_links=session.excluded_links,
        origin_export_scopes=session._scopes or None,
    )
    for asn in session.graph.ases:
        assert session.path(asn) == fresh.path(asn), (
            f"AS{asn} under {sorted(map(sorted, session.excluded_links))}"
        )
        got = session.route(asn)
        want = fresh.route(asn)
        if want is None:
            assert got is None
        else:
            assert got is not None and (got.path, got.kind) == (want.path, want.kind)
    assert len(session) == len(fresh)


def improve_detach_graph(peer_of: int) -> ASGraph:
    """The adversarial repair topology (see module docstring).

    AS5 holds a long customer route up the 1-11-12-13 chain and a short
    provider route via AS2 (a peer of ``peer_of``).  AS20 initially routes
    via AS9; killing link (13, 5) shortens AS5's route while degrading it
    to provider kind, and the repaired label must steal AS20 (and its
    customer AS30) from AS9 — across the intact part of the forest.
    """
    g = ASGraph()
    g.add_provider_link(customer=1, provider=11)
    g.add_provider_link(customer=11, provider=12)
    g.add_provider_link(customer=12, provider=13)
    g.add_provider_link(customer=13, provider=5)
    g.add_peer_link(peer_of, 2)
    g.add_provider_link(customer=5, provider=2)
    g.add_provider_link(customer=9, provider=12)
    g.add_provider_link(customer=20, provider=5)
    g.add_provider_link(customer=20, provider=9)
    g.add_provider_link(customer=30, provider=20)
    return g


class TestSubtreeRepair:
    def test_improve_detach_steals_intact_subtree(self):
        g = improve_detach_graph(peer_of=1)
        sess = DynamicRoutingSession(g, [1])
        assert sess.path(5) == (5, 13, 12, 11, 1)
        assert sess.route(5).kind is RouteKind.CUSTOMER
        assert sess.path(20) == (20, 9, 12, 11, 1)
        assert sess.path(30) == (30, 20, 9, 12, 11, 1)

        assert sess.exclude_link((13, 5))
        # AS5's route shortened (5 -> 3) while degrading to provider kind;
        # the repaired offer must displace AS20's intact provider route and
        # drag AS30 along.
        assert sess.path(5) == (5, 2, 1)
        assert sess.route(5).kind is RouteKind.PROVIDER
        assert sess.path(20) == (20, 5, 2, 1)
        assert sess.path(30) == (30, 20, 5, 2, 1)
        assert sess.stats.subtree_repairs == 1
        assert sess.stats.full_rebuilds == 0
        assert_matches_fresh(sess)

    def test_improve_detach_on_equal_length_tiebreak(self):
        # Peering AS2 at AS11 lengthens AS5's repaired route by one: its
        # offer to AS20 now TIES AS9's, and must win on the lower index.
        g = improve_detach_graph(peer_of=11)
        sess = DynamicRoutingSession(g, [1])
        assert sess.path(20) == (20, 9, 12, 11, 1)
        assert sess.exclude_link((13, 5))
        assert sess.path(5) == (5, 2, 11, 1)
        assert sess.path(20) == (20, 5, 2, 11, 1)
        assert sess.path(30) == (30, 20, 5, 2, 11, 1)
        assert sess.stats.full_rebuilds == 0
        assert_matches_fresh(sess)

    def test_exhaustive_single_and_paired_exclusions(self):
        for peer_of in (1, 11):
            g = improve_detach_graph(peer_of)
            links = [frozenset((a, b)) for a, b, _rel in g.links()]
            for first in links:
                for second in links:
                    sess = DynamicRoutingSession(g, [1])
                    sess.exclude_link(first)
                    assert_matches_fresh(sess)
                    sess.exclude_link(second)
                    assert_matches_fresh(sess)
                    sess.restore_link(first)
                    assert_matches_fresh(sess)

    def test_non_parent_edge_exclusion_is_noop(self):
        g = improve_detach_graph(peer_of=1)
        sess = DynamicRoutingSession(g, [1])
        # AS20 routes via AS9, so (20, 5) is a never-chosen candidate.
        assert sess.exclude_link((20, 5))
        assert sess.stats.noops == 1
        assert sess.stats.subtree_repairs == 0
        assert_matches_fresh(sess)

    def test_unknown_endpoint_exclusion_is_noop(self):
        g = improve_detach_graph(peer_of=1)
        sess = DynamicRoutingSession(g, [1])
        before = sess.path(30)
        assert sess.exclude_link((999, 1000))
        assert sess.stats.noops == 1
        assert sess.path(30) == before
        assert_matches_fresh(sess)

    def test_duplicate_and_missing_events_return_false(self):
        g = improve_detach_graph(peer_of=1)
        sess = DynamicRoutingSession(g, [1])
        assert sess.exclude_link((13, 5))
        assert not sess.exclude_link((5, 13))  # same frozenset link
        assert not sess.restore_link((1, 11))  # never excluded
        assert sess.restore_link((13, 5))
        assert not sess.restore_link((13, 5))
        assert_matches_fresh(sess)


class TestUndoLog:
    def test_flap_back_replays_undo(self):
        g = improve_detach_graph(peer_of=1)
        sess = DynamicRoutingSession(g, [1])
        assert sess.exclude_link((13, 5))
        assert sess.restore_link((13, 5))
        assert sess.stats.undo_restores == 1
        assert sess.stats.full_rebuilds == 0
        assert sess.path(5) == (5, 13, 12, 11, 1)
        assert sess.path(20) == (20, 9, 12, 11, 1)
        assert_matches_fresh(sess)

    def test_intervening_event_invalidates_undo(self):
        g = improve_detach_graph(peer_of=1)
        sess = DynamicRoutingSession(g, [1])
        sess.exclude_link((13, 5))
        sess.exclude_link((12, 13))  # moves the exclusion set past the log
        sess.restore_link((13, 5))
        assert sess.stats.undo_restores == 0
        assert_matches_fresh(sess)
        sess.restore_link((12, 13))
        assert_matches_fresh(sess)


class TestEquivalenceProperty:
    @settings(deadline=None, max_examples=40)
    @given(
        topo_seed=st.integers(min_value=0, max_value=7),
        origin_index=st.integers(min_value=0, max_value=10 ** 6),
        events=st.lists(
            st.tuples(
                st.sampled_from(["exclude", "restore", "flap"]),
                st.integers(min_value=0, max_value=10 ** 6),
            ),
            min_size=1,
            max_size=14,
        ),
    )
    def test_random_event_sequences_match_fresh_compute(
        self, topo_seed, origin_index, events
    ):
        graph = generate_topology(
            TopologyConfig(num_ases=70, num_tier1=3, num_tier2=12, seed=topo_seed)
        )
        links = sorted(
            (frozenset((a, b)) for a, b, _rel in graph.links()),
            key=sorted,
        )
        asns = sorted(graph.ases)
        origin = asns[origin_index % len(asns)]
        sess = DynamicRoutingSession(graph, [origin])
        for op, pick in events:
            if op == "restore" and sess.excluded_links:
                link = sorted(sess.excluded_links, key=sorted)[
                    pick % len(sess.excluded_links)
                ]
                sess.restore_link(link)
            elif op == "flap":
                link = links[pick % len(links)]
                sess.exclude_link(link)
                sess.restore_link(link)
            else:
                sess.exclude_link(links[pick % len(links)])
            assert_matches_fresh(sess)

    @settings(deadline=None, max_examples=20)
    @given(
        topo_seed=st.integers(min_value=20, max_value=24),
        data=st.data(),
    )
    def test_multi_origin_tails_and_scopes(self, topo_seed, data):
        graph = generate_topology(
            TopologyConfig(num_ases=60, num_tier1=3, num_tier2=10, seed=topo_seed)
        )
        links = sorted(
            (frozenset((a, b)) for a, b, _rel in graph.links()),
            key=sorted,
        )
        asns = sorted(graph.ases)
        o1, o2, victim = asns[3], asns[17], asns[29]
        forged = data.draw(st.booleans())
        origins = {o1: (o1,), o2: (o2, victim) if forged else (o2,)}
        scope = frozenset(asns[::4])
        sess = DynamicRoutingSession(
            graph, origins, origin_export_scopes={o1: scope}
        )
        ref = RecomputeSession(
            graph, origins, origin_export_scopes={o1: scope}
        )
        for _ in range(6):
            if data.draw(st.booleans()) and sess.excluded_links:
                link = sorted(sess.excluded_links, key=sorted)[0]
                sess.restore_link(link)
                ref.restore_link(link)
            else:
                link = links[data.draw(st.integers(0, len(links) - 1))]
                sess.exclude_link(link)
                ref.exclude_link(link)
            assert_matches_fresh(sess)
            for asn in asns[::7]:
                assert sess.path(asn) == ref.path(asn)

    def test_forged_tail_sessions_always_rebuild(self):
        g = improve_detach_graph(peer_of=1)
        sess = DynamicRoutingSession(g, {5: (5, 1)})
        assert not sess._incremental_ok
        sess.exclude_link((13, 5))  # a parent edge of the plain session
        assert sess.stats.subtree_repairs == 0
        assert_matches_fresh(sess)


class TestSessionLifecycle:
    def test_set_excluded_diffs_to_target(self):
        g = improve_detach_graph(peer_of=1)
        sess = DynamicRoutingSession(g, [1])
        assert sess.set_excluded([(13, 5), (20, 9)])
        assert sess.excluded_links == frozenset(
            {frozenset((13, 5)), frozenset((20, 9))}
        )
        assert_matches_fresh(sess)
        assert sess.set_excluded([(20, 9)])
        assert sess.excluded_links == frozenset({frozenset((20, 9))})
        assert_matches_fresh(sess)
        assert not sess.set_excluded([(20, 9)])

    def test_constructor_excluded_links(self):
        g = improve_detach_graph(peer_of=1)
        sess = DynamicRoutingSession(g, [1], excluded_links=[(13, 5)])
        assert sess.path(20) == (20, 5, 2, 1)
        assert_matches_fresh(sess)

    def test_outcome_snapshot_is_immutable_copy(self):
        g = improve_detach_graph(peer_of=1)
        sess = DynamicRoutingSession(g, [1])
        snap = sess.outcome()
        before = snap.path(20)
        sess.exclude_link((13, 5))
        assert snap.path(20) == before  # snapshot unaffected by later events
        assert sess.outcome().path(20) == (20, 5, 2, 1)

    def test_graph_mutation_recovers_on_next_event(self):
        g = improve_detach_graph(peer_of=1)
        sess = DynamicRoutingSession(g, [1])
        g.add_provider_link(customer=40, provider=2)
        sess.exclude_link((13, 5))
        assert sess.path(40) == (40, 2, 1)
        assert_matches_fresh(sess)

    def test_rejects_unknown_origin_and_bad_scope(self):
        g = improve_detach_graph(peer_of=1)
        with pytest.raises(ValueError):
            DynamicRoutingSession(g, [12345])
        with pytest.raises(ValueError):
            DynamicRoutingSession(g, [1], origin_export_scopes={2: frozenset({1})})

    def test_verify_raises_on_corrupted_state(self):
        g = improve_detach_graph(peer_of=1)
        sess = DynamicRoutingSession(g, [1])
        sess.verify()
        sess._plen[sess._gi.idx[30]] = 0  # corrupt: drop AS30's route
        with pytest.raises(AssertionError):
            sess.verify()

    def test_release_drops_state_and_blocks_use(self):
        g = improve_detach_graph(peer_of=1)
        sess = DynamicRoutingSession(g, [1])
        sess.exclude_link((13, 5))  # populate the undo log
        assert sess._undo is not None
        sess.release()
        assert sess.released
        assert sess._undo is None
        assert sess._children == []
        assert sess._plen == [] and sess._parent == []
        sess.release()  # idempotent
        for poke in (
            lambda: sess.path(20),
            lambda: sess.outcome(),
            lambda: sess.exclude_link((20, 9)),
            lambda: sess.restore_link((13, 5)),
            lambda: sess.set_excluded([]),
        ):
            with pytest.raises(RuntimeError, match="released"):
                poke()

    def test_recompute_session_release(self):
        g = improve_detach_graph(peer_of=1)
        sess = RecomputeSession(g, [1])
        sess.path(20)  # populate the cached outcome
        assert sess._outcome is not None
        sess.release()
        assert sess.released
        assert sess._outcome is None
        sess.release()  # idempotent
        with pytest.raises(RuntimeError, match="released"):
            sess.path(20)
        with pytest.raises(RuntimeError, match="released"):
            sess.exclude_link((13, 5))


class TestEngineSessionAPI:
    def test_fast_kernel_returns_incremental_session(self):
        engine = RoutingEngine(kernel="fast")
        g = improve_detach_graph(peer_of=1)
        sess = engine.session(g, [1])
        assert isinstance(sess, DynamicRoutingSession)
        assert engine.stats().sessions == 1
        assert "1 sessions" in engine.stats().format()

    def test_legacy_kernel_returns_recompute_session(self):
        engine = RoutingEngine(kernel="legacy")
        g = improve_detach_graph(peer_of=1)
        sess = engine.session(g, [1])
        assert isinstance(sess, RecomputeSession)

    def test_incremental_override_and_agreement(self):
        engine = RoutingEngine(kernel="fast")
        g = improve_detach_graph(peer_of=1)
        fast = engine.session(g, [1])
        slow = engine.session(g, [1], incremental=False)
        assert isinstance(slow, RecomputeSession)
        for link in [(13, 5), (12, 13), (20, 9)]:
            fast.exclude_link(link)
            slow.exclude_link(link)
            for asn in g.ases:
                assert fast.path(asn) == slow.path(asn)
        assert engine.stats().sessions == 2


def _trace_world(seed=0):
    graph = generate_topology(
        TopologyConfig(num_ases=80, num_tier1=3, num_tier2=15, seed=seed)
    )
    prefixes = {Prefix.parse(f"10.0.{i}.0/24"): 40 + i for i in range(10)}
    tor = list(prefixes)[:3]
    return graph, prefixes, tor


class TestTraceIntegration:
    def test_incremental_trace_streams_match_full_recompute(self):
        graph, prefixes, tor = _trace_world()
        def run(incremental):
            cfg = TraceConfig(
                duration_days=3.0, seed=9, sessions_per_collector=3,
                collector_names=("rrc00",), incremental=incremental,
            )
            engine = TraceEngine(
                graph, prefixes, tor, cfg, engine=RoutingEngine()
            )
            return engine.run()

        a, b = run(True), run(False)
        assert set(a.streams) == set(b.streams)
        for session in a.streams:
            assert [
                (r.time, r.prefix, r.as_path, r.from_reset)
                for r in a.streams[session].records
            ] == [
                (r.time, r.prefix, r.as_path, r.from_reset)
                for r in b.streams[session].records
            ]

    def test_route_cache_is_bounded_with_evictions_counted(self):
        graph, prefixes, tor = _trace_world()
        cfg = TraceConfig(
            duration_days=3.0, seed=9, sessions_per_collector=3,
            collector_names=("rrc00",), route_cache_cap=4,
        )
        engine = TraceEngine(graph, prefixes, tor, cfg, engine=RoutingEngine())
        recorder = Recorder()
        previous = obs.set_recorder(recorder)
        try:
            engine.run()
        finally:
            obs.set_recorder(previous)
        counters = recorder.snapshot().counters
        assert len(engine._route_cache) <= 4
        assert counters.get("trace.route_cache.evictions", 0) > 0
        assert recorder.snapshot().gauges["trace.route_cache.size"] <= 4

    def test_session_cache_is_bounded(self):
        graph, prefixes, tor = _trace_world()
        cfg = TraceConfig(
            duration_days=2.0, seed=9, sessions_per_collector=3,
            collector_names=("rrc00",), session_cache_cap=2,
        )
        engine = TraceEngine(graph, prefixes, tor, cfg, engine=RoutingEngine())
        engine.run()
        assert 0 < len(engine._pool) <= 2

    def test_link_reverse_index_matches_linear_scan(self):
        graph, prefixes, tor = _trace_world()
        cfg = TraceConfig(
            duration_days=3.0, seed=9, sessions_per_collector=3,
            collector_names=("rrc00",),
        )
        engine = TraceEngine(graph, prefixes, tor, cfg, engine=RoutingEngine())
        engine.run()
        all_links = {l for links in engine._prefix_links.values() for l in links}
        assert all_links  # the run must have produced routed prefixes
        for link in sorted(all_links, key=sorted):
            expected = {
                p for p, links in engine._prefix_links.items() if link in links
            }
            assert engine._prefixes_using_link(link) == expected
        # and a link nothing routes over resolves to the empty set
        assert engine._prefixes_using_link(frozenset((999998, 999999))) == set()

    def test_cache_cap_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(route_cache_cap=0)
        with pytest.raises(ValueError):
            TraceConfig(session_cache_cap=0)
