"""Shared fixtures: one small world, built once per test session."""

from __future__ import annotations

import random

import pytest

from repro.asgraph import TopologyConfig, generate_topology
from repro.scenario import Scenario, ScenarioConfig


@pytest.fixture(scope="session")
def small_scenario() -> Scenario:
    """A ~1/10-scale world shared by integration-ish tests (read-only!)."""
    return Scenario(ScenarioConfig.small(seed=1))


@pytest.fixture(scope="session")
def small_trace(small_scenario):
    """A month trace over the small world with two observer clients."""
    observers = small_scenario.client_ases(2)
    return small_scenario.run_trace(observer_asns=observers), observers


@pytest.fixture(scope="session")
def tiny_graph():
    """A 60-AS topology for routing/simulator tests (read-only!)."""
    return generate_topology(TopologyConfig(num_ases=60, num_tier1=4, num_tier2=15, seed=2))


@pytest.fixture()
def rng():
    return random.Random(1234)
