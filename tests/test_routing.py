"""Unit and property tests for Gao-Rexford route computation.

The hand-built topologies pin down each preference rule; the property
tests check global invariants (valley-freeness, loop-freeness, next-hop
consistency) on randomly generated Internets.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asgraph import (
    ASGraph,
    Relationship,
    RouteKind,
    TopologyConfig,
    compute_routes,
    generate_topology,
)
from repro.asgraph.relationships import is_valley_free
from repro.asgraph.routing import as_path


def diamond() -> ASGraph:
    """1 and 2 are tier-1 peers; 3 customer of both; 4 customer of 3."""
    g = ASGraph()
    g.add_peer_link(1, 2)
    g.add_provider_link(customer=3, provider=1)
    g.add_provider_link(customer=3, provider=2)
    g.add_provider_link(customer=4, provider=3)
    return g


class TestPreferences:
    def test_customer_route_beats_shorter_peer_route(self):
        # 1 -peer- 2; 2 is also reachable via customer chain 1<-3<-2? No:
        # build: dest 5 is customer of 2; 1 peers with 2 AND has customer 3
        # whose customer is 5 too (longer customer path).
        g = ASGraph()
        g.add_peer_link(1, 2)
        g.add_provider_link(customer=5, provider=2)
        g.add_provider_link(customer=3, provider=1)
        g.add_provider_link(customer=4, provider=3)
        g.add_provider_link(customer=5, provider=4)
        out = compute_routes(g, [5])
        route = out.route(1)
        # customer route 1->3->4->5 (len 4) preferred over peer 1->2->5 (len 3)
        assert route.kind is RouteKind.CUSTOMER
        assert route.path == (1, 3, 4, 5)

    def test_peer_beats_provider(self):
        g = ASGraph()
        g.add_peer_link(2, 3)
        g.add_provider_link(customer=2, provider=1)
        g.add_provider_link(customer=3, provider=1)
        g.add_provider_link(customer=9, provider=3)
        out = compute_routes(g, [9])
        # AS2 can reach 9 via peer 3 (kind PEER) or provider 1 (PROVIDER)
        route = out.route(2)
        assert route.kind is RouteKind.PEER
        assert route.path == (2, 3, 9)

    def test_shortest_within_same_kind(self):
        g = ASGraph()
        g.add_provider_link(customer=10, provider=2)
        g.add_provider_link(customer=10, provider=3)
        g.add_provider_link(customer=3, provider=4)
        g.add_provider_link(customer=2, provider=1)
        g.add_provider_link(customer=4, provider=1)
        out = compute_routes(g, [10])
        # AS1 has customer routes via 2 (1,2,10) and via 4 (1,4,3,10)
        assert out.path(1) == (1, 2, 10)

    def test_lowest_next_hop_tiebreak(self):
        g = ASGraph()
        g.add_provider_link(customer=10, provider=5)
        g.add_provider_link(customer=10, provider=3)
        g.add_provider_link(customer=5, provider=1)
        g.add_provider_link(customer=3, provider=1)
        out = compute_routes(g, [10])
        # both candidates have length 3; next hops 3 < 5
        assert out.path(1) == (1, 3, 10)

    def test_origin_route_wins(self):
        g = diamond()
        out = compute_routes(g, [3])
        assert out.route(3).kind is RouteKind.ORIGIN
        assert out.path(3) == (3,)

    def test_unreachable_when_disconnected(self):
        g = diamond()
        g.add_as(99)
        out = compute_routes(g, [3])
        assert out.path(99) is None
        assert 99 not in out.reachable_ases()


class TestValleyFreeExport:
    def test_peer_route_not_given_to_other_peer(self):
        # 1 -peer- 2 -peer- 3, dest customer of 3: AS1 must NOT reach dest
        # through two peering hops.
        g = ASGraph()
        g.add_peer_link(1, 2)
        g.add_peer_link(2, 3)
        g.add_provider_link(customer=9, provider=3)
        out = compute_routes(g, [9])
        assert out.path(1) is None

    def test_provider_route_reaches_customers_only(self):
        # dest hangs off tier-1 1; 2 is customer of 1; 3 is peer of 2:
        # 3 must not learn the provider route from 2.
        g = ASGraph()
        g.add_provider_link(customer=9, provider=1)
        g.add_provider_link(customer=2, provider=1)
        g.add_peer_link(2, 3)
        out = compute_routes(g, [9])
        assert out.path(2) == (2, 1, 9)
        assert out.path(3) is None


class TestMultiOrigin:
    def test_capture_set_partition(self):
        g = diamond()
        out = compute_routes(g, [1, 2])
        cap1 = out.capture_set(1)
        cap2 = out.capture_set(2)
        assert cap1 | cap2 == g.ases
        assert not cap1 & cap2
        assert 1 in cap1 and 2 in cap2

    def test_forged_origin_path_rejected_by_victim(self):
        # attacker 4 announces path (4, 3): 3 must reject it (loop).
        g = diamond()
        out = compute_routes(g, {3: (3,), 4: (4, 3)})
        assert out.route(3).kind is RouteKind.ORIGIN
        # and 4's own announcement keeps origin 3 in the path it spreads
        for asn, route in out.items():
            if asn != 3 and route.path[-1] == 3 and 4 in route.path:
                assert route.path[-2:] == (4, 3)

    def test_origin_scope_restricts_first_hop(self):
        g = ASGraph()
        g.add_provider_link(customer=10, provider=2)
        g.add_provider_link(customer=10, provider=3)
        g.add_provider_link(customer=2, provider=1)
        g.add_provider_link(customer=3, provider=1)
        out = compute_routes(g, [10], origin_export_scopes={10: frozenset({3})})
        assert out.path(2) == (2, 1, 3, 10)
        assert out.path(1) == (1, 3, 10)

    def test_scope_for_non_origin_rejected(self):
        g = diamond()
        with pytest.raises(ValueError):
            compute_routes(g, [3], origin_export_scopes={4: frozenset({3})})

    def test_crafted_path_must_start_with_origin(self):
        g = diamond()
        with pytest.raises(ValueError):
            compute_routes(g, {4: (3, 4)})
        with pytest.raises(ValueError):
            compute_routes(g, {4: (4, 4)})
        with pytest.raises(ValueError):
            compute_routes(g, [])


class TestExcludedLinks:
    def test_failure_forces_detour(self):
        g = diamond()
        out = compute_routes(g, [1])
        assert out.path(4) == (4, 3, 1)
        out2 = compute_routes(g, [1], excluded_links=[frozenset({3, 1})])
        assert out2.path(4) == (4, 3, 2, 1)

    def test_full_cut_means_unreachable(self):
        g = diamond()
        out = compute_routes(
            g, [1], excluded_links=[frozenset({3, 1}), frozenset({1, 2})]
        )
        assert out.path(4) is None
        assert out.path(3) is None


class TestGlobalInvariants:
    @settings(deadline=None, max_examples=15)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=79),
    )
    def test_paths_are_valley_free_and_loop_free(self, seed, dest):
        g = generate_topology(
            TopologyConfig(num_ases=80, num_tier1=3, num_tier2=15, seed=seed)
        )
        out = compute_routes(g, [dest])
        for asn, route in out.items():
            path = route.path
            assert len(set(path)) == len(path), f"loop in {path}"
            rels = [g.relationship(a, b) for a, b in zip(path, path[1:])]
            assert all(r is not None for r in rels), f"non-link hop in {path}"
            assert is_valley_free(rels), f"valley in {path}"

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_next_hop_consistency(self, seed):
        """If A routes via B, then A's path equals (A,) + B's path — BGP's
        per-hop forwarding consistency for a single stable outcome."""
        g = generate_topology(
            TopologyConfig(num_ases=60, num_tier1=3, num_tier2=12, seed=seed)
        )
        dest = 30
        out = compute_routes(g, [dest])
        for asn, route in out.items():
            if route.next_hop is not None:
                assert route.path[1:] == out.route(route.next_hop).path

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_everyone_reaches_dest_in_connected_graph(self, seed):
        g = generate_topology(
            TopologyConfig(num_ases=60, num_tier1=3, num_tier2=12, seed=seed)
        )
        out = compute_routes(g, [17])
        assert out.reachable_ases() == g.ases

    def test_as_path_helper(self, tiny_graph):
        path = as_path(tiny_graph, 59, 10)
        assert path is not None
        assert path[0] == 59 and path[-1] == 10


class TestEarlyExit:
    """The targets= early exit must never change what a target's route is,
    only skip work for non-targets."""

    @settings(deadline=None, max_examples=15)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=59),
        st.integers(min_value=0, max_value=59),
    )
    def test_as_path_equals_full_computation(self, seed, src, dst):
        """Regression: as_path must pass targets={src} (not route the whole
        topology) AND the targeted answer must match the untargeted one."""
        g = generate_topology(
            TopologyConfig(num_ases=60, num_tier1=3, num_tier2=12, seed=seed)
        )
        assert as_path(g, src, dst) == compute_routes(g, [dst]).path(src)

    def test_targeted_stops_before_later_stages(self):
        """A target routed in stage 1 skips stages 2 and 3 entirely: ASes
        only reachable via peer/provider routes stay unrouted."""
        g = ASGraph()
        g.add_provider_link(customer=9, provider=1)  # stage 1 serves AS1
        g.add_peer_link(1, 2)                        # stage 2 would serve AS2
        g.add_provider_link(customer=3, provider=1)  # stage 3 would serve AS3
        out = compute_routes(g, [9], targets=frozenset({1}))
        assert out.path(1) == (1, 9)
        assert out.path(2) is None
        assert out.path(3) is None

    def test_targeted_peer_route_is_exact(self):
        g = ASGraph()
        g.add_peer_link(1, 2)
        g.add_provider_link(customer=9, provider=2)
        full = compute_routes(g, [9])
        targeted = compute_routes(g, [9], targets=frozenset({1}))
        assert targeted.path(1) == full.path(1) == (1, 2, 9)

    def test_stage_timings_accumulate(self):
        g = diamond()
        timings = {}
        compute_routes(g, [4], stage_timings=timings)
        assert set(timings) == {"customer", "peer", "provider"}
        before = dict(timings)
        compute_routes(g, [4], stage_timings=timings)
        assert all(timings[k] >= before[k] for k in before)
