"""Tests for the §5 countermeasures."""

import random

import pytest

from repro.analysis.prefixes import Prefix
from repro.bgpsim.collector import UpdateRecord, UpdateStream
from repro.core.countermeasures import (
    Alert,
    MonitorConfig,
    PrefixMonitor,
    dynamics_aware_filter,
    short_path_guard_weights,
)
from repro.tor.circuit import Circuit
from repro.tor.relay import Flag, Relay

P = Prefix.parse("10.0.0.0/24")
Q = Prefix.parse("10.0.1.0/24")


def relay(fp, flags=(), address="10.0.0.1"):
    return Relay(
        fingerprint=fp,
        nickname=f"nick{fp}",
        address=address,
        or_port=9001,
        bandwidth=100,
        flags=frozenset(set(flags) | {Flag.RUNNING, Flag.VALID}),
    )


def circuit(guard_fp="G", exit_fp="E"):
    return Circuit(
        guard=relay(guard_fp, {Flag.GUARD}, "10.0.0.1"),
        middle=relay("M", (), "11.0.0.1"),
        exit=relay(exit_fp, {Flag.EXIT}, "12.0.0.1"),
    )


class TestDynamicsAwareFilter:
    def test_rejects_shared_as(self):
        accept = dynamics_aware_filter(
            entry_ases={"G": frozenset({1, 2, 3})},
            exit_ases={"E": frozenset({3, 4})},
        )
        assert not accept(circuit())

    def test_accepts_disjoint(self):
        accept = dynamics_aware_filter(
            entry_ases={"G": frozenset({1, 2})},
            exit_ases={"E": frozenset({3, 4})},
        )
        assert accept(circuit())

    def test_fails_closed_without_history(self):
        accept = dynamics_aware_filter(entry_ases={}, exit_ases={"E": frozenset({1})})
        assert not accept(circuit())

    def test_dynamics_matter(self):
        """A circuit safe on *current* paths is rejected once historical
        dynamics put the same AS on both segments — the paper's point."""
        current = dynamics_aware_filter(
            entry_ases={"G": frozenset({1, 2})},
            exit_ases={"E": frozenset({3})},
        )
        with_history = dynamics_aware_filter(
            entry_ases={"G": frozenset({1, 2, 9})},  # AS9 seen last month
            exit_ases={"E": frozenset({3, 9})},
        )
        c = circuit()
        assert current(c)
        assert not with_history(c)


class TestPrefixMonitor:
    def test_detects_origin_change(self):
        monitor = PrefixMonitor({P: 7})
        ok = monitor.observe(UpdateRecord(1.0, P, (42, 9, 7)))
        assert ok == []
        alerts = monitor.observe(UpdateRecord(2.0, P, (42, 9, 66)))
        assert [a.kind for a in alerts] == ["new-origin"]
        assert P in monitor.suspected_prefixes

    def test_detects_more_specific(self):
        monitor = PrefixMonitor({Prefix.parse("10.0.0.0/16"): 7})
        sub = Prefix.parse("10.0.5.0/24")
        alerts = monitor.observe(UpdateRecord(1.0, sub, (42, 66)))
        assert [a.kind for a in alerts] == ["more-specific"]

    def test_detects_path_shortening(self):
        monitor = PrefixMonitor({P: 7}, MonitorConfig(shortening_threshold=2))
        monitor.observe(UpdateRecord(1.0, P, (42, 1, 2, 3, 7)), session="s1")
        alerts = monitor.observe(UpdateRecord(2.0, P, (42, 7)), session="s1")
        assert "path-shortening" in [a.kind for a in alerts]

    def test_shortening_tracked_per_session(self):
        monitor = PrefixMonitor({P: 7})
        monitor.observe(UpdateRecord(1.0, P, (42, 1, 2, 3, 7)), session="s1")
        alerts = monitor.observe(UpdateRecord(2.0, P, (42, 7)), session="s2")
        assert "path-shortening" not in [a.kind for a in alerts]

    def test_withdrawals_ignored(self):
        monitor = PrefixMonitor({P: 7})
        assert monitor.observe(UpdateRecord(1.0, P, None)) == []

    def test_unmonitored_unrelated_prefix_ignored(self):
        monitor = PrefixMonitor({P: 7})
        far = Prefix.parse("99.0.0.0/24")
        assert monitor.observe(UpdateRecord(1.0, far, (42, 66))) == []

    def test_aggressive_config_flags_legit_te(self):
        """False positives are acceptable by design (§5): a legitimate
        origin shift still raises an alert."""
        monitor = PrefixMonitor({P: 7})
        alerts = monitor.observe(UpdateRecord(1.0, P, (42, 8)))  # new origin 8
        assert alerts

    def test_observe_stream(self):
        stream = UpdateStream(
            ("rrc00", 42),
            [
                UpdateRecord(1.0, P, (42, 9, 7)),
                UpdateRecord(2.0, P, (42, 66)),
            ],
        )
        monitor = PrefixMonitor({P: 7})
        alerts = monitor.observe_stream(stream)
        assert len(alerts) >= 1
        assert monitor.alerts == alerts

    def test_hijack_on_trace_is_detected(self, small_trace):
        """Inject a same-prefix hijack into a real trace session; the
        monitor must flag it while processing the whole stream."""
        trace, _ = small_trace
        session = trace.collector_sessions[0]
        stream = trace.streams[session]
        target = next(iter(stream.prefixes() & trace.tor_prefixes), None)
        if target is None:
            pytest.skip("session carries no tor prefix records")
        origin = trace.prefix_origins[target]
        monitor = PrefixMonitor({p: trace.prefix_origins[p] for p in trace.tor_prefixes})
        evil = UpdateRecord(stream.records[-1].time + 1, target, (session[1], 666_666))
        for record in list(stream) + [evil]:
            monitor.observe(record, session=session)
        assert target in monitor.suspected_prefixes
        assert any(a.kind == "new-origin" and a.prefix == target for a in monitor.alerts)


class TestShortPathWeights:
    def guards(self):
        return [relay(f"G{i}", {Flag.GUARD}, f"10.{i}.0.1") for i in range(4)]

    def test_shorter_paths_weigh_more(self):
        guards = self.guards()
        lengths = {"G0": 2, "G1": 4, "G2": 3, "G3": 2}
        weights = short_path_guard_weights(guards, lambda g: lengths[g.fingerprint])
        assert weights["G0"] == weights["G3"] > weights["G2"] > weights["G1"]
        assert weights["G0"] / weights["G1"] == pytest.approx(4.0)  # (4/2)^2

    def test_unknown_path_fails_closed(self):
        guards = self.guards()
        weights = short_path_guard_weights(guards, lambda g: None)
        assert all(w == 0.0 for w in weights.values())

    def test_alpha_zero_is_uniform(self):
        guards = self.guards()
        weights = short_path_guard_weights(guards, lambda g: 3, alpha=0.0)
        assert set(weights.values()) == {1.0}

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            short_path_guard_weights([], lambda g: 1, alpha=-1)
