"""Tests for the bounded-memory windowed replay driver."""

import pytest

from repro.analysis.prefixes import Prefix
from repro.bgpsim.collector import IterSource, StreamEvent, UpdateRecord
from repro.bgpsim.stream import (
    DAY,
    Window,
    WindowOverflowError,
    iter_windows,
    replay,
)
from repro.persist import CheckpointError

P = Prefix.parse("10.0.0.0/24")
SESSION = ("rrc00", 42)


def ev(t, path=(42, 1)):
    return StreamEvent(SESSION, UpdateRecord(t, P, tuple(path) if path else None))


class CountingConsumer:
    """Records per-window event counts; trivially checkpointable."""

    def __init__(self):
        self.counts = []
        self.total = 0

    def consume(self, window):
        self.counts.append((window.index, window.start, window.end, len(window)))
        self.total += len(window)

    def state(self):
        return {"counts": [list(c) for c in self.counts], "total": self.total}

    def restore(self, state):
        self.counts = [tuple(c) for c in state["counts"]]
        self.total = int(state["total"])


class TestIterWindows:
    def test_chops_into_consecutive_windows(self):
        events = [ev(0.0), ev(5.0), ev(10.0), ev(25.0)]
        windows = list(iter_windows(events, window_seconds=10.0))
        assert [(w.index, w.start, w.end, len(w)) for w in windows] == [
            (0, 0.0, 10.0, 2),
            (1, 10.0, 20.0, 1),
            (2, 20.0, 30.0, 1),
        ]

    def test_empty_gaps_yield_empty_windows(self):
        events = [ev(5.0), ev(35.0)]
        windows = list(iter_windows(events, window_seconds=10.0))
        assert [len(w) for w in windows] == [1, 0, 0, 1]
        assert [w.index for w in windows] == [0, 1, 2, 3]

    def test_duration_pads_quiet_tail(self):
        events = [ev(5.0)]
        windows = list(iter_windows(events, window_seconds=10.0, duration=50.0))
        assert [len(w) for w in windows] == [1, 0, 0, 0, 0]
        assert windows[-1].end == 50.0

    def test_empty_stream_with_duration_covers_span(self):
        windows = list(iter_windows([], window_seconds=10.0, duration=30.0))
        assert [(w.index, len(w)) for w in windows] == [(0, 0), (1, 0), (2, 0)]

    def test_window_cap_raises_with_window_named(self):
        events = [ev(0.0), ev(1.0), ev(2.0)]
        with pytest.raises(WindowOverflowError, match=r"window 0 \[0\.0, 10\.0\)"):
            list(iter_windows(events, window_seconds=10.0, max_window_events=2))

    def test_out_of_order_event_rejected(self):
        events = [ev(15.0), ev(5.0)]
        with pytest.raises(ValueError, match="not time-ordered"):
            list(iter_windows(events, window_seconds=10.0))

    def test_start_index_keeps_absolute_alignment(self):
        events = [ev(25.0)]
        windows = list(iter_windows(events, window_seconds=10.0, start_index=2))
        assert [(w.index, w.start, w.end) for w in windows] == [(2, 20.0, 30.0)]

    def test_start_index_past_duration_yields_nothing(self):
        # Resuming a completed replay must not invent windows past the span.
        windows = list(
            iter_windows([], window_seconds=10.0, duration=30.0, start_index=3)
        )
        assert windows == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            list(iter_windows([], window_seconds=0.0))
        with pytest.raises(ValueError):
            list(iter_windows([], window_seconds=1.0, max_window_events=0))


def make_source(times):
    return IterSource(SESSION, (UpdateRecord(t, P, (42, 1, int(t))) for t in times))


class _Events:
    """Iterable-of-StreamEvent source with duration/fingerprint attrs."""

    def __init__(self, times, duration, fingerprint="fp"):
        self._times = times
        self.duration = duration
        self.fingerprint = fingerprint

    def __iter__(self):
        return (ev(t, (42, 1, i)) for i, t in enumerate(self._times))


class TestReplay:
    def test_report_counts(self):
        source = _Events([0.0, 5.0, 15.0], duration=30.0)
        consumer = CountingConsumer()
        report = replay(source, consumer, window_seconds=10.0)
        assert report.windows == 3
        assert report.records == 3
        assert report.peak_window_events == 2
        assert report.resumed_windows == 0
        assert report.end == 30.0
        assert consumer.total == 3

    def test_source_attrs_become_defaults(self):
        source = _Events([0.0], duration=25.0)
        report = replay(source, CountingConsumer(), window_seconds=10.0)
        # duration 25 -> windows [0,10), [10,20), [20,30)
        assert report.windows == 3

    def test_checkpoint_then_resume_matches_uninterrupted(self, tmp_path):
        times = [0.0, 5.0, 12.0, 22.0, 27.0, 38.0]
        ckpt = str(tmp_path / "replay.ckpt")

        straight = CountingConsumer()
        replay(_Events(times, 40.0), straight, window_seconds=10.0)

        class Stop(Exception):
            pass

        class Interrupter:
            def __init__(self, inner, after):
                self.inner, self.after, self.done = inner, after, 0

            def consume(self, window):
                if self.done >= self.after:
                    raise Stop
                self.inner.consume(window)
                self.done += 1

            def state(self):
                return self.inner.state()

            def restore(self, state):
                self.inner.restore(state)

        partial = CountingConsumer()
        with pytest.raises(Stop):
            replay(
                _Events(times, 40.0),
                Interrupter(partial, 2),
                window_seconds=10.0,
                checkpoint=ckpt,
            )

        resumed = CountingConsumer()
        report = replay(
            _Events(times, 40.0),
            resumed,
            window_seconds=10.0,
            checkpoint=ckpt,
            resume=True,
        )
        assert report.resumed_windows == 2
        assert report.windows == 2
        assert resumed.state() == straight.state()

    def test_resume_of_complete_checkpoint_is_noop(self, tmp_path):
        ckpt = str(tmp_path / "replay.ckpt")
        first = CountingConsumer()
        replay(_Events([0.0, 15.0], 20.0), first, window_seconds=10.0, checkpoint=ckpt)

        again = CountingConsumer()
        report = replay(
            _Events([0.0, 15.0], 20.0),
            again,
            window_seconds=10.0,
            checkpoint=ckpt,
            resume=True,
        )
        assert report.windows == 0
        assert report.resumed_windows == 2
        assert again.state() == first.state()

    def test_fingerprint_mismatch_refused(self, tmp_path):
        ckpt = str(tmp_path / "replay.ckpt")
        replay(
            _Events([0.0], 10.0, fingerprint="aaa"),
            CountingConsumer(),
            window_seconds=10.0,
            checkpoint=ckpt,
        )
        with pytest.raises(CheckpointError):
            replay(
                _Events([0.0], 10.0, fingerprint="bbb"),
                CountingConsumer(),
                window_seconds=10.0,
                checkpoint=ckpt,
                resume=True,
            )

    def test_window_len(self):
        w = Window(index=0, start=0.0, end=1.0, events=[ev(0.5)])
        assert len(w) == 1


class TestTraceReplay:
    def test_trace_stream_replays_bounded(self, small_scenario):
        stream = small_scenario.open_trace_stream()
        consumer = CountingConsumer()
        report = replay(stream, consumer, window_seconds=DAY)
        assert report.windows == round(stream.duration / DAY)
        assert report.records == consumer.total > 0
        assert report.peak_window_events <= consumer.total
