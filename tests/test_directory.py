"""Tests for directory-authority voting and consensus computation."""

import pytest

from repro.tor.consensus import Consensus
from repro.tor.directory import (
    AuthorityPolicy,
    DirectoryAuthority,
    ServerDescriptor,
    Vote,
    compute_consensus,
)
from repro.tor.relay import Flag


def descriptor(fp, bw=5000, uptime=30.0, exits=False, address="10.0.0.1"):
    return ServerDescriptor(
        fingerprint=fp,
        nickname=f"nick{fp}",
        address=address,
        or_port=9001,
        advertised_bandwidth=bw,
        uptime_days=uptime,
        allows_exit=exits,
    )


def authorities(n=5, policy=None, reliable=True):
    policy = policy or AuthorityPolicy(
        reachability=1.0 if reliable else 0.9, measurement_sigma=0.0
    )
    return [DirectoryAuthority(f"auth{i}", policy, seed=i) for i in range(n)]


POPULATION = [
    descriptor("A", bw=10_000, uptime=60, address="10.0.0.1"),
    descriptor("B", bw=8_000, uptime=40, exits=True, address="10.1.0.1"),
    descriptor("C", bw=500, uptime=2, address="10.2.0.1"),
    descriptor("D", bw=50, uptime=90, address="10.3.0.1"),
    descriptor("E", bw=6_000, uptime=1, exits=True, address="10.4.0.1"),
]


class TestAuthorityVoting:
    def test_vote_lists_reachable_relays(self):
        auth = authorities(1)[0]
        vote = auth.vote(POPULATION)
        assert all(vote.lists(d.fingerprint) for d in POPULATION)

    def test_flag_assignment_rules(self):
        auth = authorities(1)[0]
        vote = auth.vote(POPULATION)
        _d, _bw, flags_a = vote.entries["A"]
        assert Flag.GUARD in flags_a  # fast, stable, top-half bandwidth
        _d, _bw, flags_c = vote.entries["C"]
        assert Flag.STABLE not in flags_c  # 2 days uptime
        assert Flag.GUARD not in flags_c
        _d, _bw, flags_d = vote.entries["D"]
        assert Flag.FAST not in flags_d  # 50 KB/s < floor
        _d, _bw, flags_b = vote.entries["B"]
        assert Flag.EXIT in flags_b
        _d, _bw, flags_e = vote.entries["E"]
        assert Flag.EXIT in flags_e
        assert Flag.GUARD not in flags_e  # not stable

    def test_measurement_noise_varies_by_authority(self):
        policy = AuthorityPolicy(reachability=1.0, measurement_sigma=0.3)
        votes = [
            DirectoryAuthority(f"a{i}", policy, seed=i).vote(POPULATION)
            for i in range(3)
        ]
        measured = {v.authority: v.entries["A"][1] for v in votes}
        assert len(set(measured.values())) > 1

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AuthorityPolicy(guard_bw_percentile=1.5)
        with pytest.raises(ValueError):
            AuthorityPolicy(reachability=0.0)
        with pytest.raises(ValueError):
            descriptor("X", bw=-1)


class TestConsensusComputation:
    def test_majority_listing(self):
        votes = [a.vote(POPULATION) for a in authorities(5)]
        consensus = compute_consensus(votes)
        assert len(consensus) == len(POPULATION)
        assert isinstance(consensus, Consensus)

    def test_minority_listed_relay_excluded(self):
        """A relay only two of five authorities saw must not appear —
        the defence §3.2 invokes against fake-guard MITM."""
        votes = [a.vote(POPULATION) for a in authorities(5)]
        fake = descriptor("EVIL", bw=50_000, address="66.6.0.1")
        evil_votes = [DirectoryAuthority(f"evil{i}", AuthorityPolicy(reachability=1.0, measurement_sigma=0.0), seed=i).vote([fake]) for i in range(2)]
        merged = votes[:3] + evil_votes  # 3 honest + 2 listing only EVIL
        consensus = compute_consensus(merged)
        assert "EVIL" not in consensus
        # honest relays still make quorum (3 of 5)
        assert "A" in consensus

    def test_lying_authority_cannot_inflate_bandwidth(self):
        """Low-median measurement: one authority reporting 100x changes
        nothing."""
        honest = [a.vote(POPULATION) for a in authorities(4)]
        liar_entries = {}
        for fp, entry in honest[0].entries.items():
            d, bw, flags = entry
            liar_entries[fp] = (d, bw * 100, flags)
        liar = Vote(authority="liar", entries=liar_entries)
        consensus = compute_consensus(honest + [liar])
        honest_only = compute_consensus(honest)
        for relay in consensus.relays:
            assert relay.bandwidth <= honest_only.relay(relay.fingerprint).bandwidth * 1.01

    def test_flag_majority(self):
        """A flag voted by a minority of listing authorities is dropped."""
        base = [a.vote(POPULATION) for a in authorities(5)]
        # strip GUARD from three of the five votes for relay A
        doctored = []
        for i, vote in enumerate(base):
            entries = dict(vote.entries)
            if i < 3:
                d, bw, flags = entries["A"]
                entries["A"] = (d, bw, frozenset(flags - {Flag.GUARD}))
            doctored.append(Vote(vote.authority, entries))
        consensus = compute_consensus(doctored)
        assert not consensus.relay("A").is_guard

    def test_flaky_measurements_still_converge(self):
        policy = AuthorityPolicy(reachability=0.8, measurement_sigma=0.2)
        votes = [
            DirectoryAuthority(f"a{i}", policy, seed=100 + i).vote(POPULATION)
            for i in range(9)
        ]
        consensus = compute_consensus(votes)
        # with 9 authorities at 80% reachability, all relays make quorum whp
        assert len(consensus) >= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_consensus([])
        vote = authorities(1)[0].vote(POPULATION)
        with pytest.raises(ValueError):
            compute_consensus([vote, vote])

    def test_consensus_usable_by_path_selection(self):
        """The voted consensus plugs straight into the selection stack."""
        import random

        from repro.tor.pathsel import PathSelector

        votes = [a.vote(POPULATION) for a in authorities(5)]
        consensus = compute_consensus(votes)
        selector = PathSelector(consensus, random.Random(1))
        circuit = selector.build_circuit()
        assert circuit is not None
        assert circuit.guard.is_guard and circuit.exit.is_exit
