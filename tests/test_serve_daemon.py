"""Integration tests for the routing daemon and its blocking client.

The daemon runs on a background thread with an ephemeral port; clients
are plain blocking sockets.  Covers: batch answers bit-identical to the
in-process facade, malformed/oversized frame handling (error responses,
never a crash), per-client response ordering under concurrency, and
snapshot/restore of the result cache.
"""

import asyncio
import threading

import pytest

from repro.asgraph.engine import RoutingEngine
from repro.serve.api import (
    BatchRequest,
    ExposureQuery,
    HijackQuery,
    HijackQueryResult,
    PathQuery,
    QueryError,
    encode,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import RoutingDaemon, ServeConfig
from repro.serve.facade import QueryFacade


class DaemonHarness:
    """One daemon on a background thread, plus client plumbing."""

    def __init__(self, graph, **config) -> None:
        self.daemon = RoutingDaemon(
            graph,
            engine=RoutingEngine(),
            config=ServeConfig(port=0, **config),
        )
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._started = threading.Event()
        self.host = self.port = None

    def _run(self) -> None:
        async def main() -> None:
            self.host, self.port = await self.daemon.start()
            self._started.set()
            await self.daemon.wait_stopped()

        asyncio.run(main())

    def start(self) -> "DaemonHarness":
        self._thread.start()
        assert self._started.wait(10), "daemon failed to start"
        return self

    def connect(self) -> ServeClient:
        return ServeClient.connect(self.host, self.port)

    def stop(self) -> None:
        if self._started.is_set() and self._thread.is_alive():
            try:
                with self.connect() as client:
                    client.shutdown()
            except (ConnectionError, OSError):
                pass
        self._thread.join(10)


@pytest.fixture()
def harness(tiny_graph):
    h = DaemonHarness(tiny_graph).start()
    yield h
    h.stop()


def sample_queries(graph):
    ases = sorted(graph.ases)
    c, g, e, d = ases[-1], ases[0], ases[1], ases[-2]
    return (
        PathQuery(src=c, dst=g),
        PathQuery(src=d, dst=e),
        ExposureQuery(client=c, guard=g, exit=e, dest=d),
        ExposureQuery(client=c, guard=g, exit=e, dest=d, adversaries=(ases[2],)),
        HijackQuery(victim=g, attacker=e, clients=(c, d)),
        HijackQuery(victim=g, attacker=e, kind="interception"),
    )


class TestOps:
    def test_ping_info_stats(self, harness, tiny_graph):
        with harness.connect() as client:
            assert client.ping()
            info = client.info()
            assert info["num_ases"] == len(tiny_graph)
            assert info["ases"] == sorted(tiny_graph.ases)
            assert info["kernel"] in ("fast", "legacy")
            stats = client.stats()
            assert stats["serve"]["requests"] >= 2
            assert stats["serve"]["errors"] == 0

    def test_unknown_op_is_an_error_not_a_crash(self, harness):
        with harness.connect() as client:
            with pytest.raises(ServeError, match="unknown op"):
                client.request("teleport")
            assert client.ping()  # connection survived

    def test_shutdown_stops_the_daemon(self, tiny_graph):
        h = DaemonHarness(tiny_graph).start()
        with h.connect() as client:
            assert client.shutdown()
        h._thread.join(10)
        assert not h._thread.is_alive()


class TestBatch:
    def test_batch_bit_identical_to_in_process_facade(self, harness, tiny_graph):
        """The acceptance gate: daemon answers == direct facade answers."""
        queries = sample_queries(tiny_graph)
        local = QueryFacade(tiny_graph, engine=RoutingEngine()).execute_batch(
            BatchRequest(queries=queries)
        )
        with harness.connect() as client:
            remote = client.batch(queries)
        assert [encode(r) for r in remote.results] == [
            encode(r) for r in local.results
        ]

    def test_unknown_as_yields_query_error_slot(self, harness, tiny_graph):
        present = sorted(tiny_graph.ases)[0]
        with harness.connect() as client:
            response = client.batch(
                [
                    PathQuery(src=10**6, dst=present),
                    PathQuery(src=present, dst=present),
                ]
            )
        first, second = response.results
        assert isinstance(first, QueryError)
        assert "not in topology" in first.message
        assert not isinstance(second, QueryError)

    def test_victim_equals_attacker_rejected_per_slot(self, harness, tiny_graph):
        asn = sorted(tiny_graph.ases)[0]
        with harness.connect() as client:
            response = client.batch([HijackQuery(victim=asn, attacker=asn)])
        assert isinstance(response.results[0], QueryError)

    def test_hijack_retained_clients_match_resilience_semantics(
        self, harness, tiny_graph
    ):
        """victim_retained_clients == clients still routing to the victim,
        the survival test core/resilience counts."""
        ases = sorted(tiny_graph.ases)
        victim, attacker, client_asn = ases[0], ases[1], ases[-1]
        engine = RoutingEngine()
        outcome = engine.outcome(tiny_graph, [victim, attacker])
        route = outcome.route(client_asn)
        survives = route is not None and route.origin == victim
        with harness.connect() as client:
            response = client.batch(
                [
                    HijackQuery(
                        victim=victim, attacker=attacker, clients=(client_asn,)
                    )
                ]
            )
        result = response.results[0]
        assert isinstance(result, HijackQueryResult)
        assert (client_asn in result.victim_retained_clients) == survives

    def test_batch_id_echoed(self, harness, tiny_graph):
        asn = sorted(tiny_graph.ases)[0]
        with harness.connect() as client:
            response = client.batch(
                [PathQuery(src=asn, dst=asn)], request_id="req-42"
            )
        assert response.id == "req-42"


class TestFrameHandling:
    def test_malformed_frame_gets_error_and_keeps_connection(self, harness):
        with harness.connect() as client:
            response = client.send_raw(b"this is not json\n")
            assert response["ok"] is False
            assert response["error"]["kind"] == "FrameError"
            assert client.ping()  # still line-synchronised

    def test_non_object_frame_gets_error(self, harness):
        with harness.connect() as client:
            response = client.send_raw(b"[1,2,3]\n")
            assert response["ok"] is False
            assert client.ping()

    def test_oversized_frame_gets_error_then_close(self, tiny_graph):
        h = DaemonHarness(tiny_graph, max_frame_bytes=4096).start()
        try:
            with h.connect() as client:
                blob = b'{"op": "ping", "pad": "' + b"x" * 8192 + b'"}\n'
                response = client.send_raw(blob)
                assert response["ok"] is False
                assert response["error"]["kind"] == "FrameError"
                # Fatal: the daemon hangs up after answering.
                with pytest.raises(ConnectionError):
                    client.request("ping")
        finally:
            h.stop()

    def test_client_disconnect_does_not_kill_daemon(self, harness):
        sock_client = harness.connect()
        sock_client._sock.sendall(b'{"op": "ping"')  # half a frame, then gone
        sock_client.close()
        with harness.connect() as client:
            assert client.ping()


class TestConcurrentClients:
    def test_per_client_response_ordering(self, harness, tiny_graph):
        """Each client's responses arrive in its request order even with
        many clients hammering the daemon at once."""
        ases = sorted(tiny_graph.ases)
        errors = []

        def worker(worker_id: int) -> None:
            try:
                with harness.connect() as client:
                    for i in range(10):
                        rid = f"w{worker_id}-{i}"
                        response = client.batch(
                            [PathQuery(src=ases[-1 - worker_id], dst=ases[i])],
                            request_id=rid,
                        )
                        if response.id != rid:
                            errors.append(
                                f"worker {worker_id} got {response.id}, "
                                f"wanted {rid}"
                            )
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(f"worker {worker_id}: {exc!r}")

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert errors == []

    def test_interleaved_clients_get_their_own_answers(self, harness, tiny_graph):
        ases = sorted(tiny_graph.ases)
        with harness.connect() as a, harness.connect() as b:
            ra = a.batch([PathQuery(src=ases[-1], dst=ases[0])])
            rb = b.batch([PathQuery(src=ases[-2], dst=ases[1])])
            assert ra.results[0].src == ases[-1]
            assert rb.results[0].src == ases[-2]


class TestSnapshotRestore:
    def test_snapshot_restore_equivalence(self, tiny_graph, tmp_path):
        """A daemon restored from a snapshot answers identically and from
        cache (the CI serve-smoke assertion, in miniature)."""
        queries = sample_queries(tiny_graph)
        snap = str(tmp_path / "cache.snapshot.jsonl")

        h1 = DaemonHarness(tiny_graph).start()
        try:
            with h1.connect() as client:
                first = client.batch(queries)
                # every slot answered (errors are not cached, which would
                # break the all-hits assertion below)
                assert not any(isinstance(r, QueryError) for r in first.results)
                entries = client.snapshot(snap)
                assert entries == len(queries)
        finally:
            h1.stop()

        h2 = DaemonHarness(tiny_graph).start()
        try:
            with h2.connect() as client:
                assert client.restore(snap) == entries
                second = client.batch(queries)
                stats = client.stats()
            assert [encode(r) for r in second.results] == [
                encode(r) for r in first.results
            ]
            # Every query was answered from the restored cache.
            assert stats["serve"]["cache_hits"] == len(queries)
            assert stats["engine"]["misses"] == 0
        finally:
            h2.stop()

    def test_restore_rejects_other_topology(self, tiny_graph, tmp_path):
        from repro.asgraph import TopologyConfig, generate_topology

        snap = str(tmp_path / "cache.snapshot.jsonl")
        other = generate_topology(
            TopologyConfig(num_ases=60, num_tier1=4, num_tier2=15, seed=9)
        )
        h_other = DaemonHarness(other).start()
        try:
            with h_other.connect() as client:
                client.batch(sample_queries(other))
                client.snapshot(snap)
        finally:
            h_other.stop()

        h = DaemonHarness(tiny_graph).start()
        try:
            with h.connect() as client:
                with pytest.raises(ServeError, match="graph"):
                    client.restore(snap)
        finally:
            h.stop()

    def test_missing_snapshot_is_an_error_response(self, harness, tmp_path):
        with harness.connect() as client:
            with pytest.raises(ServeError):
                client.restore(str(tmp_path / "nope.jsonl"))
            assert client.ping()
