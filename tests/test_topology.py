"""Unit tests for the AS graph and its generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asgraph import ASGraph, Relationship, TopologyConfig, generate_topology
from repro.asgraph.relationships import RouteKind, is_valley_free, may_export


class TestRelationships:
    def test_inverse(self):
        assert Relationship.CUSTOMER.inverse() is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse() is Relationship.CUSTOMER
        assert Relationship.PEER.inverse() is Relationship.PEER

    def test_route_kind_preference_order(self):
        assert RouteKind.ORIGIN < RouteKind.CUSTOMER < RouteKind.PEER < RouteKind.PROVIDER

    @pytest.mark.parametrize(
        "learned,to,expected",
        [
            (RouteKind.ORIGIN, Relationship.PROVIDER, True),
            (RouteKind.ORIGIN, Relationship.PEER, True),
            (RouteKind.CUSTOMER, Relationship.PEER, True),
            (RouteKind.CUSTOMER, Relationship.PROVIDER, True),
            (RouteKind.PEER, Relationship.CUSTOMER, True),
            (RouteKind.PEER, Relationship.PEER, False),
            (RouteKind.PEER, Relationship.PROVIDER, False),
            (RouteKind.PROVIDER, Relationship.CUSTOMER, True),
            (RouteKind.PROVIDER, Relationship.PEER, False),
            (RouteKind.PROVIDER, Relationship.PROVIDER, False),
        ],
    )
    def test_gao_rexford_export_matrix(self, learned, to, expected):
        assert may_export(learned, to) is expected

    def test_valley_free_accepts_up_peer_down(self):
        R = Relationship
        assert is_valley_free([R.PROVIDER, R.PROVIDER, R.PEER, R.CUSTOMER, R.CUSTOMER])
        assert is_valley_free([R.CUSTOMER, R.CUSTOMER])
        assert is_valley_free([])

    def test_valley_free_rejects_valleys(self):
        R = Relationship
        assert not is_valley_free([R.CUSTOMER, R.PROVIDER])  # down then up
        assert not is_valley_free([R.PEER, R.PEER])  # two peer hops
        assert not is_valley_free([R.CUSTOMER, R.PEER])  # peer after down


class TestASGraph:
    def build(self) -> ASGraph:
        g = ASGraph()
        g.add_provider_link(customer=2, provider=1)
        g.add_provider_link(customer=3, provider=1)
        g.add_peer_link(2, 3)
        return g

    def test_relationship_views(self):
        g = self.build()
        assert g.relationship(2, 1) is Relationship.PROVIDER
        assert g.relationship(1, 2) is Relationship.CUSTOMER
        assert g.relationship(2, 3) is Relationship.PEER
        assert g.relationship(1, 99) is None

    def test_neighbour_sets(self):
        g = self.build()
        assert g.providers(2) == {1}
        assert g.customers(1) == {2, 3}
        assert g.peers(3) == {2}
        assert g.neighbours(2) == {1, 3}
        assert g.degree(1) == 2

    def test_no_self_loop(self):
        g = ASGraph()
        with pytest.raises(ValueError):
            g.add_provider_link(1, 1)

    def test_no_duplicate_link(self):
        g = self.build()
        with pytest.raises(ValueError):
            g.add_peer_link(1, 2)
        with pytest.raises(ValueError):
            g.add_provider_link(2, 3)

    def test_remove_link(self):
        g = self.build()
        g.remove_link(2, 3)
        assert g.relationship(2, 3) is None
        g.remove_link(1, 2)
        assert g.relationship(1, 2) is None
        with pytest.raises(KeyError):
            g.remove_link(1, 2)

    def test_tier1_and_stubs(self):
        g = self.build()
        assert g.tier1_ases() == {1}
        assert g.stub_ases() == {2, 3}

    def test_connectivity(self):
        g = self.build()
        assert g.is_connected()
        g.add_as(99)
        assert not g.is_connected()

    def test_links_iterates_once_each(self):
        g = self.build()
        links = list(g.links())
        assert len(links) == 3
        assert g.num_links() == 3

    def test_as_rel_roundtrip(self):
        g = self.build()
        text = g.to_as_rel()
        g2 = ASGraph.from_as_rel(text)
        assert g2.ases == g.ases
        for a in g.ases:
            for b in g.ases:
                assert g.relationship(a, b) == g2.relationship(a, b)

    def test_as_rel_parse_errors(self):
        with pytest.raises(ValueError):
            ASGraph.from_as_rel("1|2\n")
        with pytest.raises(ValueError):
            ASGraph.from_as_rel("1|2|7\n")

    def test_as_rel_comments_ignored(self):
        g = ASGraph.from_as_rel("# comment\n1|2|-1\n\n3|2|0\n")
        assert g.relationship(2, 1) is Relationship.PROVIDER
        assert g.relationship(3, 2) is Relationship.PEER

    def test_copy_is_independent(self):
        g = self.build()
        clone = g.copy()
        clone.remove_link(2, 3)
        assert g.relationship(2, 3) is Relationship.PEER
        assert clone.relationship(2, 3) is None

    def test_validate_passes_on_consistent_graph(self):
        self.build().validate()


class TestGenerator:
    def test_basic_structure(self):
        cfg = TopologyConfig(num_ases=200, num_tier1=5, num_tier2=30, seed=7)
        g = generate_topology(cfg)
        assert len(g) == 200
        assert g.is_connected()
        g.validate()

    def test_tier1_clique_peers(self):
        cfg = TopologyConfig(num_ases=150, num_tier1=6, num_tier2=20, seed=3)
        g = generate_topology(cfg)
        tier1 = list(range(6))
        for i, a in enumerate(tier1):
            assert not g.providers(a), "tier-1 ASes have no providers"
            for b in tier1[i + 1 :]:
                assert g.relationship(a, b) is not None

    def test_every_non_tier1_has_upstream(self):
        cfg = TopologyConfig(num_ases=150, num_tier1=6, num_tier2=20, seed=3)
        g = generate_topology(cfg)
        for asn in range(6, 150):
            assert g.providers(asn), f"AS{asn} has no provider"

    def test_deterministic_for_seed(self):
        cfg = TopologyConfig(num_ases=120, num_tier1=4, num_tier2=20, seed=11)
        assert generate_topology(cfg).to_as_rel() == generate_topology(cfg).to_as_rel()

    def test_different_seeds_differ(self):
        a = generate_topology(TopologyConfig(num_ases=120, num_tier1=4, num_tier2=20, seed=1))
        b = generate_topology(TopologyConfig(num_ases=120, num_tier1=4, num_tier2=20, seed=2))
        assert a.to_as_rel() != b.to_as_rel()

    def test_degree_distribution_heavy_tailed(self):
        g = generate_topology(TopologyConfig(num_ases=500, num_tier1=8, num_tier2=60, seed=5))
        degrees = sorted((g.degree(a) for a in g.ases), reverse=True)
        # preferential attachment: the top AS should dwarf the median
        assert degrees[0] >= 5 * degrees[len(degrees) // 2]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TopologyConfig(num_ases=10, num_tier1=8, num_tier2=120)
        with pytest.raises(ValueError):
            TopologyConfig(num_tier1=1)
        with pytest.raises(ValueError):
            TopologyConfig(tier2_peering_prob=1.5)
        with pytest.raises(ValueError):
            TopologyConfig(stub_providers=(0, 2))

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=1000))
    def test_generated_graphs_always_valid(self, seed):
        g = generate_topology(TopologyConfig(num_ases=80, num_tier1=3, num_tier2=15, seed=seed))
        g.validate()
        assert g.is_connected()
