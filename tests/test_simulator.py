"""Tests for the message-level BGP simulator.

The strongest check: after convergence, every AS's selected path must
equal the static Gao-Rexford fixed point — two independent implementations
of the same policy model agreeing on arbitrary topologies.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.prefixes import Prefix
from repro.asgraph import TopologyConfig, compute_routes, generate_topology
from repro.bgpsim.simulator import BGPSimulator, SimulatorConfig

P = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.9.0.0/16")


def small_sim(seed=0, **kw):
    g = generate_topology(TopologyConfig(num_ases=50, num_tier1=3, num_tier2=10, seed=seed))
    return g, BGPSimulator(g, SimulatorConfig(seed=seed, **kw))


class TestConvergence:
    def test_single_announce_reaches_everyone(self):
        g, sim = small_sim()
        sim.announce(40, P)
        report = sim.run()
        assert sim.converged
        assert report.messages_delivered > 0
        for asn in g.ases:
            assert sim.path(asn, P) is not None

    @settings(deadline=None, max_examples=8)
    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=49))
    def test_matches_static_fixed_point(self, seed, origin):
        g, sim = small_sim(seed=seed % 5)
        sim.announce(origin, P)
        sim.run()
        static = compute_routes(g, [origin])
        for asn in g.ases:
            assert sim.path(asn, P) == static.path(asn), f"AS{asn}"

    def test_two_origins_matches_static_capture_sets(self):
        g, sim = small_sim(seed=3)
        sim.announce(10, P)
        sim.announce(45, P)
        sim.run()
        static = compute_routes(g, [10, 45])
        sim_capture_45 = {
            asn for asn in g.ases if (sim.path(asn, P) or (None,))[-1] == 45
        }
        assert sim_capture_45 == set(static.capture_set(45))

    def test_withdrawal_clears_network(self):
        g, sim = small_sim()
        sim.announce(40, P)
        sim.run()
        sim.withdraw(40, P)
        sim.run()
        for asn in g.ases:
            assert sim.path(asn, P) is None

    def test_two_prefixes_independent(self):
        g, sim = small_sim()
        sim.announce(40, P)
        sim.announce(20, P2)
        sim.run()
        assert sim.path(5, P)[-1] == 40
        assert sim.path(5, P2)[-1] == 20


class TestFailureRecovery:
    def test_failure_then_recovery_restores_paths(self):
        g, sim = small_sim(seed=1)
        sim.announce(40, P)
        sim.run()
        before = {asn: sim.path(asn, P) for asn in g.ases}
        provider = min(g.providers(40))
        sim.fail_link(40, provider)
        sim.run()
        sim.recover_link(40, provider)
        sim.run()
        after = {asn: sim.path(asn, P) for asn in g.ases}
        assert before == after

    def test_failure_matches_static_with_excluded_link(self):
        g, sim = small_sim(seed=2)
        sim.announce(40, P)
        sim.run()
        provider = min(g.providers(40))
        sim.fail_link(40, provider)
        sim.run()
        static = compute_routes(g, [40], excluded_links=[frozenset({40, provider})])
        for asn in g.ases:
            assert sim.path(asn, P) == static.path(asn), f"AS{asn}"

    def test_fail_unknown_link_raises(self):
        g, sim = small_sim()
        with pytest.raises(ValueError):
            sim.recover_link(0, 0)


class TestDynamicsObservability:
    def test_history_records_transitions(self):
        g, sim = small_sim(seed=1)
        sim.announce(40, P)
        sim.run()
        events = sim.paths_seen(40, P)
        assert events and events[0].path == (40,)

    def test_transient_ases_appear_during_reconvergence(self):
        """§3.1: path exploration lets extra ASes glimpse the traffic."""
        total_transients = 0
        for seed in range(5):
            g, sim = small_sim(seed=seed)
            sim.announce(40, P)
            sim.run()
            for provider in sorted(g.providers(40)):
                sim.fail_link(40, provider)
                sim.run()
                sim.recover_link(40, provider)
                sim.run()
            for asn in g.ases:
                total_transients += len(sim.transient_ases(asn, P))
        assert total_transients > 0

    def test_all_ases_seen_superset_of_final(self):
        g, sim = small_sim(seed=1)
        sim.announce(40, P)
        sim.run()
        provider = min(g.providers(40))
        sim.fail_link(40, provider)
        sim.run()
        for asn in g.ases:
            final = sim.path(asn, P)
            if final is not None:
                assert set(final) <= sim.all_ases_seen(asn, P)

    def test_session_reset_generates_messages_but_no_path_change(self):
        g, sim = small_sim(seed=1)
        sim.announce(40, P)
        sim.run()
        before = {asn: sim.path(asn, P) for asn in g.ases}
        a = 40
        b = min(g.providers(40))
        history_len = len(sim.history)
        sim.reset_session(a, b)
        report = sim.run()
        assert report.messages_delivered > 0  # artificial updates flowed
        after = {asn: sim.path(asn, P) for asn in g.ases}
        assert before == after
        assert len(sim.history) == history_len  # no path transitions


class TestTimingModel:
    def test_cannot_schedule_in_past(self):
        _g, sim = small_sim()
        sim.announce(40, P, at=5.0)
        with pytest.raises(ValueError):
            sim.announce(40, P2, at=1.0)

    def test_run_until_bounds_time(self):
        _g, sim = small_sim()
        sim.announce(40, P)
        report = sim.run(until=0.001)
        assert sim.now <= 0.0011 or report.messages_delivered == 0
        sim.run()
        assert sim.converged

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulatorConfig(link_delay_range=(0.0, 0.1))
        with pytest.raises(ValueError):
            SimulatorConfig(jitter=-1)
