"""Tests for RPKI route-origin validation (§7's BGP-security outlook)."""

import pytest

from repro.analysis.prefixes import Prefix
from repro.asgraph import TopologyConfig, generate_topology
from repro.bgpsim.attacks import simulate_hijack
from repro.bgpsim.rpki import Roa, RpkiRegistry, adoption_sweep, simulate_hijack_with_rov

P = Prefix.parse("60.0.0.0/24")


@pytest.fixture(scope="module")
def world():
    graph = generate_topology(TopologyConfig(num_ases=120, num_tier1=4, num_tier2=25, seed=5))
    victim, attacker = 100, 40
    registry = RpkiRegistry([Roa(P, victim)])
    return graph, registry, victim, attacker


class TestRoaValidation:
    def test_valid_invalid_unknown(self):
        registry = RpkiRegistry([Roa(P, 100)])
        assert registry.validate(P, 100) == "valid"
        assert registry.validate(P, 66) == "invalid"
        assert registry.validate(Prefix.parse("99.0.0.0/24"), 66) == "unknown"

    def test_max_length_blocks_more_specifics(self):
        registry = RpkiRegistry([Roa(Prefix.parse("60.0.0.0/22"), 100)])
        sub = Prefix.parse("60.0.1.0/24")
        # right origin, but /24 exceeds the ROA's max length (/22)
        assert registry.validate(sub, 100) == "invalid"
        registry2 = RpkiRegistry([Roa(Prefix.parse("60.0.0.0/22"), 100, max_length=24)])
        assert registry2.validate(sub, 100) == "valid"

    def test_roa_validation_errors(self):
        with pytest.raises(ValueError):
            Roa(Prefix.parse("60.0.0.0/22"), 100, max_length=20)
        with pytest.raises(ValueError):
            Roa(P, 100, max_length=40)

    def test_registry_for_prefixes(self):
        registry = RpkiRegistry.for_prefixes({P: 100})
        assert len(registry) == 1
        assert registry.validate(P, 100) == "valid"


class TestRovHijack:
    def test_zero_adoption_equals_plain_hijack(self, world):
        graph, registry, victim, attacker = world
        plain = simulate_hijack(graph, victim, attacker)
        rov = simulate_hijack_with_rov(
            graph, registry, P, victim, attacker, adopters=frozenset()
        )
        assert rov.capture_set == plain.capture_set

    def test_full_adoption_kills_the_hijack(self, world):
        graph, registry, victim, attacker = world
        everyone = frozenset(graph.ases - {attacker})
        rov = simulate_hijack_with_rov(
            graph, registry, P, victim, attacker, adopters=everyone
        )
        # only the attacker itself still "routes" to the bogus origin
        assert rov.capture_set <= {attacker}

    def test_adoption_monotonically_helps(self, world):
        graph, registry, victim, attacker = world
        curve = adoption_sweep(graph, registry, P, victim, attacker, seed=2)
        rates = [rate for rate, _cap in curve]
        captures = [cap for _rate, cap in curve]
        assert rates == sorted(rates)
        assert captures[0] >= captures[-1]
        assert captures[-1] < 0.1

    def test_adopters_never_captured(self, world):
        graph, registry, victim, attacker = world
        import random

        adopters = frozenset(random.Random(3).sample(sorted(graph.ases - {attacker, victim}), 40))
        rov = simulate_hijack_with_rov(graph, registry, P, victim, attacker, adopters)
        assert not rov.capture_set & adopters

    def test_origin_forgery_defeats_rov(self, world):
        """ROV checks the origin, not the path: a forged-origin attack
        keeps reach regardless of adoption — §7's caveat about
        interception-preventing techniques.  A *stub* attacker is the
        potent case: its forged announcement arrives at its providers as a
        customer route, which Gao-Rexford preference takes over any
        shorter peer/provider route, path-length handicap notwithstanding."""
        graph, registry, victim, _ = world
        stub_attacker = max(
            asn
            for asn in graph.stub_ases()
            if asn != victim and len(graph.providers(asn)) >= 2
        )
        everyone = frozenset(graph.ases - {stub_attacker})
        forged = simulate_hijack_with_rov(
            graph, registry, P, victim, stub_attacker, adopters=everyone, forge_origin=True
        )
        honest_rov = simulate_hijack_with_rov(
            graph, registry, P, victim, stub_attacker, adopters=everyone, forge_origin=False
        )
        assert len(forged.capture_set) > len(honest_rov.capture_set)
        assert len(forged.capture_set) > 1  # real reach despite full ROV

    def test_same_victim_attacker_rejected(self, world):
        graph, registry, victim, _ = world
        with pytest.raises(ValueError):
            simulate_hijack_with_rov(graph, registry, P, victim, victim, frozenset())

    def test_bad_adoption_rate_rejected(self, world):
        graph, registry, victim, attacker = world
        with pytest.raises(ValueError):
            adoption_sweep(graph, registry, P, victim, attacker, adoption_rates=[1.5])
