"""Unit tests for the distribution helpers behind every figure."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import Ccdf, ccdf, cdf, cumulative_share, quantile


class TestQuantile:
    def test_median_odd(self):
        assert quantile([3, 1, 2], 0.5) == 2

    def test_median_even_interpolates(self):
        assert quantile([1, 2, 3, 4], 0.5) == 2.5

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert quantile(data, 0.0) == 1
        assert quantile(data, 1.0) == 9

    def test_percentile_75(self):
        # the paper's relays-per-prefix: median 1, p75 2
        data = [1] * 10 + [2] * 5 + [3] * 3 + [33]
        assert quantile(data, 0.5) == 1
        assert quantile(data, 0.75) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_bad_q_raises(self):
        with pytest.raises(ValueError):
            quantile([1], 1.5)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1))
    def test_bounded_by_extremes(self, data):
        q = quantile(data, 0.3)
        assert min(data) <= q <= max(data)


class TestCdfCcdf:
    def test_cdf_simple(self):
        assert cdf([1, 2, 2, 4]) == [(1, 0.25), (2, 0.75), (4, 1.0)]

    def test_ccdf_simple(self):
        assert ccdf([1, 2, 2, 4]) == [(1, 1.0), (2, 0.75), (4, 0.25)]

    def test_empty(self):
        assert cdf([]) == []
        assert ccdf([]) == []

    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1))
    def test_ccdf_monotone_decreasing(self, data):
        points = ccdf(data)
        fracs = [f for _v, f in points]
        assert all(a > b for a, b in zip(fracs, fracs[1:]))
        assert points[0][1] == 1.0

    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1))
    def test_cdf_ccdf_complementary(self, data):
        n = len(data)
        cdf_points = dict(cdf(data))
        ccdf_points = dict(ccdf(data))
        for value in set(data):
            # P[X <= v] + P[X > v] = 1, and P[X > v] = P[X >= v'] for the
            # next larger sample v' (or 0 at the max)
            le = cdf_points[value]
            count_gt = sum(1 for x in data if x > value)
            assert le == pytest.approx(1 - count_gt / n)


class TestCcdfQueries:
    def test_fraction_at_least(self):
        c = Ccdf.from_samples([1, 2, 2, 5])
        assert c.fraction_at_least(2) == 0.75
        assert c.fraction_at_least(6) == 0.0
        assert c.fraction_at_least(0) == 1.0

    def test_fraction_greater(self):
        c = Ccdf.from_samples([1, 2, 2, 5])
        assert c.fraction_greater(1) == 0.75
        assert c.fraction_greater(5) == 0.0

    def test_median(self):
        assert Ccdf.from_samples([1, 2, 3]).median() == 2

    def test_value_at_fraction(self):
        c = Ccdf.from_samples([1, 2, 2, 5])
        assert c.value_at_fraction(0.25) == 5
        assert c.value_at_fraction(1.0) == 1

    def test_empty_raises(self):
        c = Ccdf.from_samples([])
        with pytest.raises(ValueError):
            c.fraction_at_least(1)

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1), st.integers(min_value=0, max_value=50))
    def test_queries_match_direct_count(self, data, x):
        c = Ccdf.from_samples(data)
        assert c.fraction_at_least(x) == pytest.approx(sum(1 for v in data if v >= x) / len(data))
        assert c.fraction_greater(x) == pytest.approx(sum(1 for v in data if v > x) / len(data))


class TestCumulativeShare:
    def test_figure2_left_semantics(self):
        # 5 ASes with these relay counts: top-1 share, top-2 share, ...
        shares = cumulative_share([10, 5, 3, 1, 1])
        assert shares[0] == pytest.approx(0.5)
        assert shares[1] == pytest.approx(0.75)
        assert shares[-1] == pytest.approx(1.0)

    def test_sorts_descending_first(self):
        assert cumulative_share([1, 10]) == cumulative_share([10, 1])

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            cumulative_share([0, 0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=50))
    def test_monotone_and_normalised(self, weights):
        shares = cumulative_share(weights)
        assert all(a <= b + 1e-12 for a, b in zip(shares, shares[1:]))
        assert shares[-1] == pytest.approx(1.0)
