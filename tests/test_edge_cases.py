"""Gap-filling edge-case tests across modules."""

import pytest

from repro.analysis.prefixes import Prefix
from repro.asgraph import ASGraph, RouteKind, compute_routes
from repro.bgpsim.collector import UpdateRecord, UpdateStream

P = Prefix.parse("10.0.0.0/24")


class TestRoutingTiebreaks:
    def test_equidistant_multi_origin_tiebreak_is_deterministic(self):
        """Two origins at equal preference/distance: the lowest-next-hop
        rule must resolve identically on every run."""
        g = ASGraph()
        # 1 has two customers 5 and 7, both originating; paths tie.
        g.add_provider_link(customer=5, provider=1)
        g.add_provider_link(customer=7, provider=1)
        out1 = compute_routes(g, [5, 7])
        out2 = compute_routes(g, [5, 7])
        assert out1.path(1) == out2.path(1) == (1, 5)  # lowest next hop wins

    def test_origin_with_no_links_reaches_only_itself(self):
        g = ASGraph()
        g.add_as(9)
        g.add_provider_link(customer=2, provider=1)
        out = compute_routes(g, [9])
        assert out.reachable_ases() == {9}

    def test_route_kind_exposed(self):
        g = ASGraph()
        g.add_provider_link(customer=2, provider=1)
        out = compute_routes(g, [2])
        assert out.route(1).kind is RouteKind.CUSTOMER
        assert out.route(2).kind is RouteKind.ORIGIN

    def test_single_as_origin(self):
        g = ASGraph()
        g.add_as(1)
        out = compute_routes(g, [1])
        assert out.path(1) == (1,)


class TestStreamIndexConsistency:
    def test_append_after_index_built(self):
        stream = UpdateStream(("rrc00", 1))
        stream.append(UpdateRecord(1.0, P, (1, 2)))
        assert stream.prefixes() == {P}  # builds the index
        q = Prefix.parse("10.1.0.0/24")
        stream.append(UpdateRecord(2.0, q, (1, 3)))
        assert stream.prefixes() == {P, q}
        assert len(stream.records_for(q)) == 1
        assert stream.path_timeline(q) == [(2.0, (1, 3))]

    def test_records_for_returns_copy(self):
        stream = UpdateStream(("rrc00", 1), [UpdateRecord(1.0, P, (1, 2))])
        records = stream.records_for(P)
        records.clear()
        assert len(stream.records_for(P)) == 1


class TestPrefixCornerCases:
    def test_slash_zero_and_thirty_two(self):
        default = Prefix.parse("0.0.0.0/0")
        host = Prefix.parse("1.2.3.4/32")
        assert default.contains_prefix(host)
        assert host.num_addresses == 1
        assert host.contains_ip(host.network)

    def test_subprefix_identity(self):
        p = Prefix.parse("10.0.0.0/16")
        assert p.subprefix(16, 0) == p

    def test_trie_with_default_and_host_routes(self):
        from repro.analysis.prefixes import PrefixTrie, parse_ip

        trie = PrefixTrie(
            {
                Prefix.parse("0.0.0.0/0"): "default",
                Prefix.parse("1.2.3.4/32"): "host",
            }
        )
        assert trie.longest_match(parse_ip("1.2.3.4"))[1] == "host"
        assert trie.longest_match(parse_ip("1.2.3.5"))[1] == "default"


class TestConsensusWeightEdges:
    def test_all_relays_one_class(self):
        from repro.tor.consensus import BandwidthWeights

        w = BandwidthWeights.compute(G=0, M=0, E=0, D=100)
        for name in ("Wgd", "Wed"):
            assert 0.0 <= getattr(w, name) <= 1.0

    def test_consensus_of_middles_only(self):
        from repro.tor.consensus import Consensus
        from repro.tor.relay import Relay

        relays = [
            Relay(f"M{i}", f"m{i}", f"10.0.{i}.1", 9001, 100) for i in range(3)
        ]
        consensus = Consensus(relays)
        assert consensus.guards() == []
        assert consensus.exits() == []
        assert consensus.total_bandwidth() == 300
