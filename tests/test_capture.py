"""Tests for packet captures and cell/window machinery."""

import pytest
from hypothesis import given, strategies as st

from repro.traffic.capture import PacketCapture, SegmentTaps
from repro.traffic.cells import CELL_PAYLOAD, CELL_SIZE, StreamWindow


class TestPacketCapture:
    def test_observe_total_keeps_running_max(self):
        cap = PacketCapture("x")
        cap.observe_total(1.0, 100)
        cap.observe_total(2.0, 50)  # retransmission: lower seq
        cap.observe_total(3.0, 200)
        assert cap.total_bytes == 200
        assert [v for _t, v in cap.points] == [100, 200]

    def test_time_must_not_go_backwards(self):
        cap = PacketCapture("x")
        cap.observe_total(2.0, 10)
        with pytest.raises(ValueError):
            cap.observe_total(1.0, 20)

    def test_observe_delta(self):
        cap = PacketCapture("x")
        cap.observe_delta(1.0, 100)
        cap.observe_delta(2.0, 50)
        assert cap.total_bytes == 150

    def test_cumulative_at(self):
        cap = PacketCapture("x")
        cap.observe_total(1.0, 100)
        cap.observe_total(3.0, 300)
        assert cap.cumulative_at(0.5) == 0
        assert cap.cumulative_at(1.0) == 100
        assert cap.cumulative_at(2.9) == 100
        assert cap.cumulative_at(10.0) == 300

    def test_binned_increments(self):
        cap = PacketCapture("x")
        cap.observe_total(0.5, 100)
        cap.observe_total(1.5, 250)
        cap.observe_total(3.2, 400)
        bins = cap.binned(1.0, duration=4.0)
        assert bins == [100, 150, 0, 150, 0]
        assert sum(bins) == 400

    def test_binned_validation_and_empty(self):
        cap = PacketCapture("x")
        with pytest.raises(ValueError):
            cap.binned(0)
        assert cap.binned(1.0) == []

    def test_curve_units(self):
        cap = PacketCapture("x")
        cap.observe_total(1.0, 2_000_000)
        times, mbs = cap.curve()
        assert times == [1.0]
        assert mbs == [2.0]

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=10**9),
            ),
            max_size=50,
        )
    )
    def test_points_always_strictly_increasing(self, raw):
        cap = PacketCapture("x")
        for t, v in sorted(raw, key=lambda p: p[0]):
            cap.observe_total(t, v)
        values = [v for _t, v in cap.points]
        assert all(a < b for a, b in zip(values, values[1:]))
        times = [t for t, _v in cap.points]
        assert times == sorted(times)

    def test_segment_taps_names(self):
        taps = SegmentTaps()
        names = {c.name for c in taps.all()}
        assert names == {
            "guard to client",
            "client to guard",
            "server to exit",
            "exit to server",
        }


class TestStreamWindow:
    def test_package_consumes_slots(self):
        w = StreamWindow(window=3, increment=1)
        assert w.available == 3
        w.package()
        w.package()
        w.package()
        assert not w.can_package()
        with pytest.raises(RuntimeError):
            w.package()

    def test_sendme_credits(self):
        w = StreamWindow(window=2, increment=1)
        w.package()
        w.package()
        w.on_sendme()
        assert w.available == 1
        w.package()

    def test_overcredit_rejected(self):
        w = StreamWindow(window=2, increment=1)
        with pytest.raises(RuntimeError):
            w.on_sendme()

    def test_deliver_emits_sendme_every_increment(self):
        w = StreamWindow(window=500, increment=50)
        sendmes = sum(1 for i in range(500) if w.deliver())
        assert sendmes == 10
        assert w.sendmes_sent == 10

    def test_window_conservation_loop(self):
        """Packaging/delivery in lockstep never exhausts the window."""
        w = StreamWindow(window=10, increment=5)
        for _ in range(1000):
            assert w.can_package()
            w.package()
            if w.deliver():
                w.on_sendme()

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamWindow(window=0)
        with pytest.raises(ValueError):
            StreamWindow(window=10, increment=20)

    def test_cell_constants(self):
        assert CELL_SIZE == 512
        assert CELL_PAYLOAD < CELL_SIZE
