"""Tests for exit policies and destination-aware exit selection."""

import random

import pytest

from repro.tor.consensus import Consensus
from repro.tor.exitpolicy import DEFAULT_EXIT_POLICY, REJECT_ALL, ExitPolicy, PolicyRule
from repro.tor.pathsel import PathSelector
from repro.tor.relay import Flag, Relay


class TestPolicyRule:
    def test_parse_wildcard(self):
        rule = PolicyRule.parse("accept *:80")
        assert rule.accept and rule.prefix is None
        assert rule.port_low == rule.port_high == 80

    def test_parse_prefix_and_range(self):
        rule = PolicyRule.parse("reject 10.0.0.0/8:1-1024")
        assert not rule.accept
        assert str(rule.prefix) == "10.0.0.0/8"
        assert (rule.port_low, rule.port_high) == (1, 1024)

    def test_parse_host_address(self):
        rule = PolicyRule.parse("reject 1.2.3.4:*")
        assert rule.prefix.length == 32

    def test_roundtrip_str(self):
        for text in ("accept *:80", "reject 10.0.0.0/8:1-1024", "accept *:*", "reject 1.2.3.4/32:443"):
            assert str(PolicyRule.parse(text)) == text

    @pytest.mark.parametrize(
        "bad",
        ["allow *:80", "accept *", "accept 80", "accept *:0", "accept *:99999", "accept *:9-2"],
    )
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            PolicyRule.parse(bad)

    def test_matching(self):
        rule = PolicyRule.parse("accept 10.0.0.0/8:443")
        from repro.analysis.prefixes import parse_ip

        assert rule.matches(parse_ip("10.1.2.3"), 443)
        assert not rule.matches(parse_ip("11.1.2.3"), 443)
        assert not rule.matches(parse_ip("10.1.2.3"), 80)


class TestExitPolicy:
    def test_first_match_wins(self):
        policy = ExitPolicy(["reject *:80", "accept *:*"])
        assert not policy.allows("1.2.3.4", 80)
        assert policy.allows("1.2.3.4", 443)

    def test_implicit_reject(self):
        policy = ExitPolicy(["accept *:443"])
        assert policy.allows("1.2.3.4", 443)
        assert not policy.allows("1.2.3.4", 8080)

    def test_default_policy_shape(self):
        assert DEFAULT_EXIT_POLICY.allows("93.184.216.34", 443)
        assert DEFAULT_EXIT_POLICY.allows("93.184.216.34", 80)
        assert not DEFAULT_EXIT_POLICY.allows("93.184.216.34", 25)  # no SMTP
        assert not DEFAULT_EXIT_POLICY.allows("10.1.2.3", 443)  # RFC1918
        assert DEFAULT_EXIT_POLICY.allows_some_port()

    def test_reject_all(self):
        assert not REJECT_ALL.allows("1.2.3.4", 443)
        assert not REJECT_ALL.allows_some_port()

    def test_parse_multi(self):
        policy = ExitPolicy.parse("reject *:25, accept *:80\naccept *:443")
        assert policy.allows("1.1.1.1", 80)
        assert not policy.allows("1.1.1.1", 25)
        with pytest.raises(ValueError):
            ExitPolicy.parse("  ")

    def test_equality_and_hash(self):
        a = ExitPolicy(["accept *:80"])
        b = ExitPolicy(["accept *:80"])
        assert a == b and hash(a) == hash(b)
        assert a != ExitPolicy(["accept *:443"])

    def test_port_validation(self):
        with pytest.raises(ValueError):
            DEFAULT_EXIT_POLICY.allows("1.2.3.4", 0)


def relay(fp, flags=(), bw=1000, address="10.0.0.1", policy=None):
    return Relay(
        fingerprint=fp,
        nickname=f"n{fp}",
        address=address,
        or_port=9001,
        bandwidth=bw,
        flags=frozenset(set(flags) | {Flag.RUNNING, Flag.VALID}),
        exit_policy=policy,
    )


class TestRelayIntegration:
    def test_supports_exit_to(self):
        web_only = relay("W", {Flag.EXIT}, policy=ExitPolicy(["accept *:80", "accept *:443"]))
        assert web_only.supports_exit_to("1.2.3.4", 443)
        assert not web_only.supports_exit_to("1.2.3.4", 22)
        no_policy = relay("N", {Flag.EXIT})
        assert no_policy.supports_exit_to("1.2.3.4", 22)
        non_exit = relay("M", (), policy=ExitPolicy(["accept *:*"]))
        assert not non_exit.supports_exit_to("1.2.3.4", 443)

    def test_destination_aware_selection(self):
        relays = [
            relay("G1", {Flag.GUARD}, address="10.0.0.1"),
            relay("G2", {Flag.GUARD}, address="10.1.0.1"),
            relay("M1", (), address="11.0.0.1"),
            relay("M2", (), address="11.1.0.1"),
            relay(
                "Eweb",
                {Flag.EXIT},
                address="12.0.0.1",
                policy=ExitPolicy(["accept *:80", "accept *:443"]),
            ),
            relay(
                "Essh",
                {Flag.EXIT},
                address="12.1.0.1",
                policy=ExitPolicy(["accept *:22"]),
            ),
        ]
        consensus = Consensus(relays)
        selector = PathSelector(consensus, random.Random(1))
        for _ in range(10):
            circuit = selector.build_circuit(destination=("8.8.8.8", 22))
            assert circuit is not None
            assert circuit.exit.fingerprint == "Essh"
            circuit = selector.build_circuit(destination=("8.8.8.8", 443))
            assert circuit.exit.fingerprint == "Eweb"

    def test_unreachable_destination_yields_none(self):
        relays = [
            relay("G1", {Flag.GUARD}, address="10.0.0.1"),
            relay("M1", (), address="11.0.0.1"),
            relay("E", {Flag.EXIT}, address="12.0.0.1", policy=REJECT_ALL),
        ]
        consensus = Consensus(relays)
        selector = PathSelector(consensus, random.Random(1), max_attempts=5)
        assert selector.build_circuit(destination=("8.8.8.8", 443)) is None
