"""Tests for congestion-based guard inference (§3.2's first step)."""

import random

import pytest

from repro.core.guard_inference import CongestionProbe, GuardInferenceResult, ProbeSchedule
from repro.traffic.fluid import FluidNetwork


def build_network(num_guards=8, background_per_relay=3, guard_capacity=50.0):
    """Relays g0..gN plus a middle/exit pair; target goes through g3."""
    caps = {f"g{i}": guard_capacity for i in range(num_guards)}
    caps["mid"] = 500.0
    caps["exit"] = 500.0
    net = FluidNetwork(caps)
    net.add_circuit("target", ["g3", "mid", "exit"])
    rng = random.Random(7)
    for i in range(num_guards):
        for j in range(background_per_relay):
            net.add_circuit(f"bg-{i}-{j}", [f"g{i}", "mid", "exit"])
    return net


class TestProbeSchedule:
    def test_random_pattern_balanced(self):
        schedule = ProbeSchedule.random_pattern(16, random.Random(0))
        assert sum(schedule.pattern) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbeSchedule(())
        with pytest.raises(ValueError):
            ProbeSchedule((0, 2, 1))
        with pytest.raises(ValueError):
            ProbeSchedule((0, 1), probes_per_burst=0)
        with pytest.raises(ValueError):
            ProbeSchedule.random_pattern(2, random.Random(0))


class TestCongestionProbe:
    def test_true_guard_scores_highest(self):
        net = build_network()
        probe = CongestionProbe(net, "target", rng=random.Random(1))
        result = probe.infer_guard([f"g{i}" for i in range(8)])
        assert result.best == "g3"
        assert result.rank_of("g3") == 1
        assert result.margin > 0.3

    def test_probing_cleans_up_after_itself(self):
        net = build_network()
        before = set(net.circuits)
        probe = CongestionProbe(net, "target", rng=random.Random(2))
        probe.probe_candidate("g0", ProbeSchedule.random_pattern(8, random.Random(3)))
        assert set(net.circuits) == before

    def test_unrelated_candidate_scores_near_zero(self):
        net = build_network()
        probe = CongestionProbe(net, "target", rng=random.Random(4))
        score = probe.probe_candidate(
            "g0", ProbeSchedule.random_pattern(16, random.Random(5))
        )
        assert abs(score) < 0.5

    def test_true_guard_score_positive(self):
        net = build_network()
        probe = CongestionProbe(net, "target", rng=random.Random(6))
        score = probe.probe_candidate(
            "g3", ProbeSchedule.random_pattern(16, random.Random(7))
        )
        assert score > 0.5

    def test_works_with_busier_background(self):
        net = build_network(background_per_relay=6)
        probe = CongestionProbe(net, "target", rng=random.Random(8))
        result = probe.infer_guard([f"g{i}" for i in range(8)], probes_per_burst=12)
        assert result.best == "g3"

    def test_validation(self):
        net = build_network()
        with pytest.raises(ValueError):
            CongestionProbe(net, "nonexistent")
        probe = CongestionProbe(net, "target")
        with pytest.raises(ValueError):
            probe.infer_guard([])
        with pytest.raises(KeyError):
            probe.infer_guard(["g0"]).rank_of("zzz")


class TestEndToEndWithAttackPipeline:
    def test_inference_then_hijack(self, small_scenario):
        """The full §3.2 opening move: infer the guard by congestion, then
        hijack the inferred guard's prefix."""
        from repro.bgpsim.attacks import AttackKind, simulate_hijack

        consensus = small_scenario.consensus
        guards = consensus.guards()[:6]
        caps = {g.fingerprint: float(max(g.bandwidth, 100)) for g in guards}
        caps["mid"] = 1e9
        caps["exit"] = 1e9
        net = FluidNetwork(caps)
        true_guard = guards[2]
        net.add_circuit("target", [true_guard.fingerprint, "mid", "exit"])
        for i, g in enumerate(guards):
            net.add_circuit(f"bg{i}", [g.fingerprint, "mid", "exit"])

        probe = CongestionProbe(net, "target", rng=random.Random(9))
        result = probe.infer_guard(
            [g.fingerprint for g in guards], probes_per_burst=16
        )
        assert result.best == true_guard.fingerprint

        victim_asn = small_scenario.relay_asn(result.best)
        attacker = small_scenario.adversary_as()
        if attacker != victim_asn:
            hijack = simulate_hijack(
                small_scenario.graph, victim_asn, attacker, AttackKind.SAME_PREFIX
            )
            assert hijack.capture_fraction > 0
