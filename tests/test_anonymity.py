"""Tests for the §3.1 analytical anonymity model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.anonymity import (
    anonymity_set_entropy,
    compromise_curve,
    compromise_probability,
    expected_compromise_time,
    guard_amplification,
)


class TestCompromiseProbability:
    def test_known_values(self):
        assert compromise_probability(0.0, 10) == 0.0
        assert compromise_probability(1.0, 1) == 1.0
        assert compromise_probability(0.5, 1) == 0.5
        assert compromise_probability(0.5, 2) == 0.75

    def test_paper_formula(self):
        # 1 - (1-f)^(l*x) exactly
        f, x, l = 0.03, 7, 3
        assert compromise_probability(f, x, l) == pytest.approx(1 - (1 - f) ** (l * x))

    def test_zero_paths(self):
        assert compromise_probability(0.1, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            compromise_probability(-0.1, 1)
        with pytest.raises(ValueError):
            compromise_probability(1.1, 1)
        with pytest.raises(ValueError):
            compromise_probability(0.1, -1)
        with pytest.raises(ValueError):
            compromise_probability(0.1, 1, l=0)

    @given(
        st.floats(min_value=0.001, max_value=0.999),
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=9),
    )
    def test_monotone_in_everything(self, f, x, l):
        p = compromise_probability(f, x, l)
        assert 0 <= p <= 1
        assert compromise_probability(f, x + 1, l) >= p
        assert compromise_probability(f, x, l + 1) >= p
        assert compromise_probability(min(1.0, f + 0.1), x, l) >= p

    def test_exponential_growth_in_x(self):
        """§3.1: 'this probability increases exponentially with x' — the
        miss probability (1-p) decays geometrically."""
        f = 0.05
        misses = [1 - compromise_probability(f, x) for x in range(1, 10)]
        ratios = [b / a for a, b in zip(misses, misses[1:])]
        for r in ratios:
            assert r == pytest.approx(1 - f)


class TestGuardAmplification:
    def test_three_guards_amplify(self):
        assert guard_amplification(0.02, 4, 3) > 1.0

    def test_amplification_bounded_by_l(self):
        # P(l*x) <= l * P(x) (union bound)
        f, x, l = 0.01, 5, 3
        assert guard_amplification(f, x, l) <= l + 1e-9

    def test_degenerate_zero_risk(self):
        assert guard_amplification(0.0, 5, 3) == 1.0


class TestTrajectories:
    def test_curve_points(self):
        curve = compromise_curve(0.05, [1, 2, 3])
        assert [x for x, _p in curve] == [1, 2, 3]
        assert curve[0][1] == pytest.approx(0.05)

    def test_expected_time_crossing(self):
        probs, crossing = expected_compromise_time(0.2, [1, 2, 3, 4, 5])
        assert len(probs) == 5
        # 1-(0.8)^x >= 0.5 at x >= log(0.5)/log(0.8) ~ 3.1 -> index 3 (x=4)
        assert crossing == 3.0

    def test_never_crossing(self):
        _probs, crossing = expected_compromise_time(0.001, [1, 1, 1])
        assert crossing == math.inf

    def test_requires_monotone_x(self):
        with pytest.raises(ValueError):
            expected_compromise_time(0.1, [3, 2])


class TestAnonymitySetEntropy:
    def test_uniform(self):
        assert anonymity_set_entropy([1, 1, 1, 1]) == pytest.approx(2.0)

    def test_single_candidate_is_identified(self):
        assert anonymity_set_entropy([5]) == 0.0

    def test_skew_reduces_entropy(self):
        assert anonymity_set_entropy([100, 1, 1]) < anonymity_set_entropy([1, 1, 1])

    def test_zero_weights_ignored(self):
        assert anonymity_set_entropy([1, 0, 1]) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            anonymity_set_entropy([0, 0])
        with pytest.raises(ValueError):
            anonymity_set_entropy([-1, 2])
