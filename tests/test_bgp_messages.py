"""Unit tests for UPDATE messages and the RIB/decision machinery."""

import pytest

from repro.analysis.prefixes import Prefix
from repro.asgraph.relationships import Relationship, RouteKind
from repro.bgpsim.messages import NO_EXPORT, Announcement, UpdateMessage, Withdrawal
from repro.bgpsim.rib import AdjRibIn, LocRib, RibEntry, decision_process

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")


class TestAnnouncement:
    def test_origin_and_loop(self):
        a = Announcement(P1, (3, 2, 1))
        assert a.origin == 1
        assert a.has_loop(2)
        assert not a.has_loop(9)

    def test_prepend(self):
        a = Announcement(P1, (2, 1))
        b = a.prepended_by(5)
        assert b.as_path == (5, 2, 1)
        assert b.prefix == P1
        with pytest.raises(ValueError):
            a.prepended_by(2)

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Announcement(P1, ())

    def test_communities_carried_through_prepend(self):
        a = Announcement(P1, (1,), frozenset({NO_EXPORT}))
        assert a.prepended_by(2).communities == frozenset({NO_EXPORT})

    def test_update_message_kinds(self):
        up = UpdateMessage(7, Announcement(P1, (7, 1)))
        down = UpdateMessage(7, Withdrawal(P1))
        assert not up.is_withdrawal
        assert down.is_withdrawal
        assert up.prefix == down.prefix == P1


def entry(path, neighbour, kind):
    return RibEntry(Announcement(P1, tuple(path)), neighbour, kind)


class TestDecisionProcess:
    def test_empty(self):
        assert decision_process([]) is None

    def test_kind_dominates_length(self):
        provider_short = entry((2, 1), 2, RouteKind.PROVIDER)
        customer_long = entry((3, 4, 5, 1), 3, RouteKind.CUSTOMER)
        assert decision_process([provider_short, customer_long]) is customer_long

    def test_length_within_kind(self):
        a = entry((2, 1), 2, RouteKind.PEER)
        b = entry((3, 4, 1), 3, RouteKind.PEER)
        assert decision_process([a, b]) is a

    def test_neighbour_tiebreak(self):
        a = entry((9, 1), 9, RouteKind.PEER)
        b = entry((3, 1), 3, RouteKind.PEER)
        assert decision_process([a, b]) is b

    def test_origin_beats_all(self):
        own = entry((5,), 5, RouteKind.ORIGIN)
        cust = entry((2, 1), 2, RouteKind.CUSTOMER)
        assert decision_process([cust, own]) is own


class TestAdjRibIn:
    def test_update_withdraw(self):
        rib = AdjRibIn()
        e = entry((2, 1), 2, RouteKind.CUSTOMER)
        rib.update(e)
        assert rib.candidates(P1) == [e]
        assert rib.route_from(2, P1) is e
        assert rib.withdraw(2, P1)
        assert not rib.withdraw(2, P1)
        assert rib.candidates(P1) == []

    def test_replaces_per_neighbour(self):
        rib = AdjRibIn()
        rib.update(entry((2, 1), 2, RouteKind.CUSTOMER))
        newer = entry((2, 9, 1), 2, RouteKind.CUSTOMER)
        rib.update(newer)
        assert rib.candidates(P1) == [newer]

    def test_clear_neighbour_reports_prefixes(self):
        rib = AdjRibIn()
        rib.update(entry((2, 1), 2, RouteKind.CUSTOMER))
        rib.update(RibEntry(Announcement(P2, (2, 1)), 2, RouteKind.CUSTOMER))
        cleared = rib.clear_neighbour(2)
        assert set(cleared) == {P1, P2}
        assert rib.candidates(P1) == []

    def test_multiple_neighbours(self):
        rib = AdjRibIn()
        rib.update(entry((2, 1), 2, RouteKind.CUSTOMER))
        rib.update(entry((3, 1), 3, RouteKind.PEER))
        assert len(rib.candidates(P1)) == 2
        assert set(rib.prefixes()) == {P1}


class TestLocRib:
    def test_install_change_detection(self):
        rib = LocRib()
        e = entry((2, 1), 2, RouteKind.CUSTOMER)
        assert rib.install(P1, e)
        assert not rib.install(P1, e)  # same route: no change
        e2 = entry((3, 1), 3, RouteKind.CUSTOMER)
        assert rib.install(P1, e2)
        assert rib.best(P1) is e2

    def test_install_none_removes(self):
        rib = LocRib()
        assert not rib.install(P1, None)
        rib.install(P1, entry((2, 1), 2, RouteKind.CUSTOMER))
        assert rib.install(P1, None)
        assert rib.best(P1) is None
        assert len(rib) == 0
