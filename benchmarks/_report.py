"""Shared reporting for the benchmark harness.

Each experiment prints the rows/series the paper reports and also writes
them to ``results/<experiment>.txt`` so EXPERIMENTS.md can quote measured
values from a reproducible artefact.
"""

from __future__ import annotations

import os
from typing import Iterable

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "results")


def report(experiment: str, lines: Iterable[str]) -> None:
    """Print an experiment's result block and persist it to results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    banner = f"\n===== {experiment} ====="
    print(banner)
    print(text)
    with open(os.path.join(RESULTS_DIR, f"{experiment}.txt"), "w") as fh:
        fh.write(text + "\n")
