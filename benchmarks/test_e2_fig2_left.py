"""E2 — Figure 2 (left): AS concentration of Tor guard/exit relays.

Paper: "Only 5 ASes host 20% of Tor guards and exit relays" (Hetzner, OVH,
Abovenet, Fiberring, Online.net); the x-axis runs 1..500 ASes, the y-axis
the cumulative % of guard/exit relays hosted.
"""

import pytest

from benchmarks._report import report
from repro.analysis.stats import cumulative_share


def _concentration_curve(network):
    counts = network.guard_exit_relays_per_as()
    return cumulative_share(counts.values())


def test_e2_concentration_curve(benchmark, paper_scenario):
    shares = benchmark.pedantic(
        _concentration_curve, args=(paper_scenario.tor,), rounds=1, iterations=1
    )

    def at(k):
        return shares[min(k - 1, len(shares) - 1)]

    points = [1, 5, 10, 50, 100, 500]
    report(
        "E2_fig2_left",
        ["#ASes   cumulative share of guard/exit relays"]
        + [f"{k:5d}   {at(k):6.1%}" for k in points]
        + [
            "",
            f"paper: top-5 ASes host 20% of guard/exit relays; measured: {at(5):.1%}",
            f"hosting ASes total: {len(shares)}",
        ],
    )

    # Shape assertions: heavy concentration with the paper's anchor point.
    assert 0.12 <= at(5) <= 0.30, "top-5 share should be ~20%"
    assert at(1) >= 0.03
    assert at(50) >= 0.45
    assert shares[-1] == pytest.approx(1.0)
    # monotone
    assert all(a <= b + 1e-12 for a, b in zip(shares, shares[1:]))


def test_e2_top_hosters_are_attack_targets(benchmark, paper_scenario):
    """The same few ASes dominate; §3.2 calls them 'a very attractive
    target for active BGP attacks' — check the named top hosters exist."""
    network = paper_scenario.tor
    counts = benchmark.pedantic(network.guard_exit_relays_per_as, rounds=1, iterations=1)
    top5 = sorted(counts, key=counts.get, reverse=True)[:5]
    named = [network.as_names.get(asn, "") for asn in top5]
    assert any(name.endswith("-sim") for name in named)
