"""E6 — §3.1's analytical compromise model, connected to measured exposure.

Paper claims: P(compromise) = 1-(1-f)^(l*x) "increases exponentially with
the number of ASes (x)" and is "further amplified due to the use of
multiple guard relays" (l = 3 in 2014).

The sweep regenerates the model curves; the second test feeds *measured*
per-client exposure from the month trace into the formula — the paper's
§3.1 + §4 combination.
"""

import pytest

from benchmarks._report import report
from repro.core.anonymity import compromise_probability, guard_amplification
from repro.core.temporal import client_exposure


def _model_sweep():
    table = {}
    for f in (0.01, 0.02, 0.05, 0.10):
        for l in (1, 3):
            table[(f, l)] = [compromise_probability(f, x, l) for x in range(0, 31)]
    return table


def test_e6_model_sweep(benchmark):
    table = benchmark(_model_sweep)

    lines = ["P(compromise) = 1-(1-f)^(l*x)", "", "f      l    x=4     x=8     x=16    x=30"]
    for (f, l), curve in sorted(table.items()):
        lines.append(
            f"{f:.2f}   {l}   {curve[4]:6.3f}  {curve[8]:6.3f}  {curve[16]:6.3f}  {curve[30]:6.3f}"
        )
    lines += [
        "",
        f"guard amplification (f=0.05, x=4): l=3 vs l=1 -> "
        f"{guard_amplification(0.05, 4, 3):.2f}x",
    ]
    report("E6_analytical", lines)

    for (f, l), curve in table.items():
        # monotone in x
        assert all(a <= b for a, b in zip(curve, curve[1:]))
        # exponential: miss probability decays geometrically
        misses = [1 - p for p in curve]
        for a, b in zip(misses, misses[1:]):
            assert b == pytest.approx(a * (1 - f) ** l, rel=1e-9)
    # amplification by guards at every point
    for f in (0.01, 0.02, 0.05, 0.10):
        for x in (4, 8, 16, 30):
            assert table[(f, 3)][x] >= table[(f, 1)][x]


def test_e6_measured_exposure_into_model(benchmark, paper_trace, paper_scenario, paper_clients):
    """Feed the trace's measured x(t) into the formula per client."""
    lines = ["client AS   x(day 1)  x(day 31)   P(f=0.02)  P(f=0.05)"]
    finals = []
    # Pick guard prefixes whose origins are multi-homed: single-homed
    # origins cannot re-home their announcements, so their client-side
    # paths only move on (rare) core events.
    graph = paper_scenario.graph
    multihomed = [
        p
        for p in sorted(paper_trace.tor_prefixes, key=str)
        if len(graph.providers(paper_trace.prefix_origins[p])) >= 2
    ]
    guard_prefixes = multihomed[:: max(1, len(multihomed) // 5)][:5]
    exposures = benchmark.pedantic(
        lambda: [
            client_exposure(paper_trace, c, guard_prefixes, num_samples=31)
            for c in paper_clients
        ],
        rounds=1,
        iterations=1,
    )
    for client, exposure in zip(paper_clients, exposures):
        x0, x1 = exposure.x_over_time[0], exposure.final_exposure
        finals.append((x0, x1))
        lines.append(
            f"AS{client:<8d} {x0:8d}  {x1:9d}   {compromise_probability(0.02, x1):9.3f}"
            f"  {compromise_probability(0.05, x1):9.3f}"
        )
    report("E6_measured", lines)
    for x0, x1 in finals:
        assert x1 >= x0  # exposure only grows
    assert any(x1 > x0 for x0, x1 in finals), "no temporal growth measured"


def test_e6_guard_count_ablation(benchmark, paper_trace, paper_scenario, paper_clients):
    """Measured counterpart of the §3.1 guard-amplification argument and
    of footnote 1's "one fast guard for 9 months" proposal: the same
    client's month-end AS exposure with 1, 3, and 6 guard prefixes."""
    graph = paper_scenario.graph
    multihomed = [
        p
        for p in sorted(paper_trace.tor_prefixes, key=str)
        if len(graph.providers(paper_trace.prefix_origins[p])) >= 2
    ]
    prefixes = multihomed[:: max(1, len(multihomed) // 6)][:6]
    client = paper_clients[0]

    def sweep():
        return {
            l: client_exposure(paper_trace, client, prefixes[:l], num_samples=8)
            for l in (1, 3, 6)
        }

    exposures = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["guards (l)   x after a month   P(f=0.02)   P(f=0.05)"]
    for l, exposure in exposures.items():
        x = exposure.final_exposure
        lines.append(
            f"{l:6d}       {x:10d}       {compromise_probability(0.02, x):7.3f}"
            f"     {compromise_probability(0.05, x):7.3f}"
        )
    lines += [
        "",
        "more guards = a larger union of on-path ASes = higher compromise",
        "probability — §3.1's amplification, measured on the trace; the",
        "9-month single-guard proposal (footnote 1) trades rotation risk",
        "for a ~3x smaller AS surface.",
    ]
    report("E6_guard_ablation", lines)

    xs = [exposures[l].final_exposure for l in (1, 3, 6)]
    assert xs[0] <= xs[1] <= xs[2], "exposure must grow with guard count"
    assert xs[2] > xs[0], "guard amplification absent"
