"""E11 (extension) — §3.1 "Effect of BGP convergence on user anonymity".

The paper argues (without measuring) that path exploration during BGP
convergence lets far-flung ASes glimpse a client's traffic: too briefly
for timing analysis, but enough to learn "this client uses Tor" — the
Harvard-case inference.  The message-level simulator makes that
quantifiable: transient observer counts and dwell times for clients
watching a guard prefix through a series of link failures.
"""

import pytest

from benchmarks._report import report
from repro.analysis.prefixes import Prefix
from repro.analysis.stats import quantile
from repro.asgraph import TopologyConfig, generate_topology
from repro.core.convergence import measure_convergence_exposure

GUARD_PREFIX = Prefix.parse("60.0.0.0/24")


def _run_study(seed: int = 0, num_clients: int = 8, num_events: int = 4):
    graph = generate_topology(
        TopologyConfig(num_ases=150, num_tier1=4, num_tier2=25, seed=seed)
    )
    stubs = sorted(graph.stub_ases())
    guard = next(asn for asn in stubs if len(graph.providers(asn)) >= 2)
    clients = [asn for asn in stubs if asn != guard][-num_clients:]
    exposures = [
        measure_convergence_exposure(
            graph, client, guard, GUARD_PREFIX, num_events=num_events, seed=seed
        )
        for client in clients
    ]
    return exposures


def test_e11_transient_observers(benchmark):
    exposures = benchmark.pedantic(_run_study, rounds=1, iterations=1)

    transient_counts = [e.num_transient for e in exposures]
    stable_counts = [len(e.stable_observers) for e in exposures]
    dwells = [d for e in exposures for d in e.transient_dwell.values()]
    usage_leak = [len(e.learns_tor_usage()) for e in exposures]
    timing = [len(e.timing_capable()) for e in exposures]

    lines = [
        f"clients: {len(exposures)}, link events per client scenario: 4",
        "",
        f"stable observers per client:    median {quantile(stable_counts, 0.5):.0f}",
        f"transient observers per client: median {quantile(transient_counts, 0.5):.0f}, "
        f"max {max(transient_counts)}",
        f"ASes learning Tor usage:        median {quantile(usage_leak, 0.5):.0f}",
        f"ASes capable of timing analysis (>=5 min visibility): "
        f"median {quantile(timing, 0.5):.0f}",
    ]
    if dwells:
        lines.append(
            f"transient dwell: median {quantile(dwells, 0.5):.1f} s, "
            f"p90 {quantile(dwells, 0.9):.1f} s"
        )
    lines += [
        "",
        "paper: convergence is 'probably fast enough to prevent' timing",
        "analysis but 'these ASes can learn about a client's use of the Tor",
        "network' — usage-leak set exceeds the timing-capable set.",
    ]
    report("E11_convergence", lines)

    # Some clients gain transient observers; the usage leak dominates the
    # timing-capable set, matching the paper's qualitative argument.
    assert sum(transient_counts) > 0
    for e in exposures:
        assert e.timing_capable() <= e.learns_tor_usage()
    assert sum(usage_leak) >= sum(timing)
