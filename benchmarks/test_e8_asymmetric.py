"""E8 — §3.3: asymmetric traffic analysis deanonymises among decoys.

The paper demonstrates feasibility with one flow (Figure 2 right); this
harness quantifies it as a matching task: 8 concurrent circuits with
randomized burst workloads; the adversary observes the target's
server-side segment (data or ACKs) and must pick the matching client-side
segment (data or ACKs) — all four direction combinations, plus the
"extreme variant" (ACKs at both ends) called out in §3.3.

Includes the correlation-window ablation from DESIGN.md.
"""

import random

import pytest

from benchmarks._report import report
from repro.core.asymmetric import FlowMatcher
from repro.traffic.circuitsim import CircuitTransfer, TransferConfig
from repro.traffic.tcp import TcpConfig

NUM_FLOWS = 8
FLOW_BYTES = 2_000_000


def _burst_schedule(rng, total, duration):
    n = rng.randint(4, 9)
    cuts = sorted(rng.random() for _ in range(n - 1))
    sizes, last = [], 0.0
    for c in cuts + [1.0]:
        sizes.append(max(1, int(total * (c - last))))
        last = c
    sizes[-1] = total - sum(sizes[:-1])
    times = sorted(rng.uniform(0, duration) for _ in sizes)
    times[0] = 0.0
    return tuple(zip(times, sizes))


def _run_flows():
    flows = {}
    for i in range(NUM_FLOWS):
        rng = random.Random(500 + i)
        flows[f"flow-{i}"] = CircuitTransfer(
            TransferConfig(
                file_size=FLOW_BYTES,
                writes=_burst_schedule(rng, FLOW_BYTES, 12.0),
                server_tcp=TcpConfig(latency=0.02 + rng.random() * 0.05, rate=6e6, seed=i),
                client_tcp=TcpConfig(latency=0.01 + rng.random() * 0.05, rate=4e6, seed=i + 50),
            )
        ).run()
    return flows


@pytest.fixture(scope="module")
def flows():
    return _run_flows()


SERVER_SIDE = {
    "server->exit (data)": lambda f: f.taps.server_to_exit,
    "exit->server (ACKs)": lambda f: f.taps.exit_to_server,
}
CLIENT_SIDE = {
    "guard->client (data)": lambda f: f.taps.guard_to_client,
    "client->guard (ACKs)": lambda f: f.taps.client_to_guard,
}


def test_e8_matching_all_direction_pairs(benchmark, flows):
    matcher = FlowMatcher(bin_width=1.0)

    def run_matrix():
        outcome = {}
        for s_name, s_tap in SERVER_SIDE.items():
            for c_name, c_tap in CLIENT_SIDE.items():
                correct = 0
                margins = []
                for target_name, target_flow in flows.items():
                    result = matcher.match(
                        s_tap(target_flow),
                        {name: c_tap(f) for name, f in flows.items()},
                    )
                    correct += result.best == target_name
                    margins.append(result.margin)
                outcome[(s_name, c_name)] = (correct, sum(margins) / len(margins))
        return outcome

    outcome = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    lines = [
        f"{NUM_FLOWS} concurrent flows, {FLOW_BYTES/1e6:.0f} MB each, burst workloads",
        "",
        "observation pair                                   matched     mean margin",
    ]
    for (s_name, c_name), (correct, margin) in outcome.items():
        lines.append(f"{s_name:22s} vs {c_name:22s}  {correct}/{NUM_FLOWS}      {margin:+.3f}")
    lines += [
        "",
        "paper: 'it suffices for an AS-level adversary to observe traffic at",
        "both ends of the communication in any direction' — every pair works.",
    ]
    report("E8_asymmetric", lines)

    for pair, (correct, margin) in outcome.items():
        assert correct >= NUM_FLOWS - 1, f"{pair} matched only {correct}"
        assert margin > 0.05, f"{pair} margin too thin: {margin}"


def test_e8_ack_only_extreme_variant(benchmark, flows):
    """§3.3's 'more extreme variant': ACK streams at BOTH ends."""
    matcher = FlowMatcher(bin_width=1.0)

    def run():
        correct = 0
        for target_name, target_flow in flows.items():
            result = matcher.match(
                target_flow.taps.exit_to_server,
                {name: f.taps.client_to_guard for name, f in flows.items()},
            )
            correct += result.best == target_name
        return correct

    assert benchmark.pedantic(run, rounds=1, iterations=1) >= NUM_FLOWS - 1


def test_e8_window_ablation(benchmark, flows):
    """Correlation-window sweep: finer bins sharpen the match until the
    series get too sparse; report accuracy per bin width."""
    lines = ["bin width   matched (data vs ACK)"]

    def sweep():
        table = {}
        for bin_width in (0.25, 0.5, 1.0, 2.0, 5.0):
            matcher = FlowMatcher(bin_width=bin_width)
            correct = 0
            for target_name, target_flow in flows.items():
                result = matcher.match(
                    target_flow.taps.server_to_exit,
                    {name: f.taps.client_to_guard for name, f in flows.items()},
                )
                correct += result.best == target_name
            table[bin_width] = correct
        return table

    accuracies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for bin_width, correct in accuracies.items():
        lines.append(f"{bin_width:7.2f} s   {correct}/{NUM_FLOWS}")
    report("E8_window_ablation", lines)
    assert max(accuracies.values()) >= NUM_FLOWS - 1
    assert accuracies[1.0] >= accuracies[5.0] - 1
