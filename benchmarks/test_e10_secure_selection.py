"""E10 (extension) — the paper's future work (b): a real-time monitoring
framework for secure path selection.

Not a figure in the paper; §7 proposes it and §5 sketches the design.  The
experiment launches a hijack campaign against Tor prefixes during the
month, feeds the collector streams through the monitor, broadcasts the
suspicions, and measures (a) how often clients would have built circuits
through relays under active attack with and without the framework, and
(b) the detection latency that determines the window of vulnerability.
"""

import random

import pytest

from benchmarks._report import report
from repro.core.secure_selection import AttackSchedule, evaluate_secure_selection


def test_e10_monitoring_framework(benchmark, paper_scenario, paper_trace):
    from repro.core.interception import AttackPlanner
    from repro.tor.consensus import Position

    rng = random.Random(11)
    # The adversary attacks what it would actually attack: the prefixes
    # hosting the most guard-selection weight (E7's target ranking).
    planner = AttackPlanner(paper_scenario.graph, paper_scenario.tor)
    targets = [
        t.prefix
        for t in planner.rank_targets(Position.GUARD).top(20)
        if t.prefix in paper_trace.tor_prefixes
    ][:15]
    schedule = AttackSchedule.targeted_campaign(
        paper_trace,
        attacker_asn=paper_scenario.adversary_as(),
        prefixes=targets,
        rng=rng,
        duration=5 * 86_400.0,
    )
    clients = paper_scenario.client_ases(8)

    result = benchmark.pedantic(
        evaluate_secure_selection,
        args=(paper_scenario.tor, paper_trace, schedule, clients),
        kwargs={"circuits_per_client": 25, "seed": 2},
        rounds=1,
        iterations=1,
    )

    latency = (
        f"{result.mean_detection_latency:.0f} s"
        if result.mean_detection_latency is not None
        else "n/a"
    )
    report(
        "E10_secure_selection",
        [
            f"hijack campaign: {result.total_attacks} attacks on top guard prefixes, 5 days each",
            f"circuits built: {result.circuits_built}",
            f"vulnerable circuits, vanilla Tor:   {result.vulnerable_baseline} "
            f"({result.baseline_rate:.1%})",
            f"vulnerable circuits, with monitor:  {result.vulnerable_protected} "
            f"({result.protected_rate:.1%})",
            f"attacks detected: {result.detected_attacks}/{result.total_attacks}",
            f"mean detection latency: {latency}",
            f"never-attacked prefixes flagged (FP cost): {result.false_positive_prefixes}",
        ],
    )

    assert result.detected_attacks >= 0.8 * result.total_attacks
    assert result.protected_rate <= result.baseline_rate
    if result.mean_detection_latency is not None:
        assert result.mean_detection_latency < 900
