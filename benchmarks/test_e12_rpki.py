"""E12 (extension) — §7's closing argument, quantified: BGP security.

"Improvements in BGP security can go a long way toward addressing the
most serious concerns.  However, deployment ... has proven challenging."
The sweep shows both halves: hijack capture of a top guard prefix shrinks
with ROV adoption, but a forged-origin (interception-style) announcement
retains reach even at full adoption — only path validation would stop it.
"""

import pytest

from benchmarks._report import report
from repro.bgpsim.rpki import RpkiRegistry, adoption_sweep
from repro.core.interception import AttackPlanner
from repro.tor.consensus import Position

RATES = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def test_e12_rov_adoption_curve(benchmark, paper_scenario):
    planner = AttackPlanner(paper_scenario.graph, paper_scenario.tor)
    attacker = paper_scenario.adversary_as()
    target = next(
        t
        for t in planner.rank_targets(Position.GUARD).targets
        if t.origin_asn != attacker
    )
    registry = RpkiRegistry.for_prefixes(paper_scenario.tor.prefix_origins)

    def sweep():
        honest = adoption_sweep(
            paper_scenario.graph,
            registry,
            target.prefix,
            victim=target.origin_asn,
            attacker=attacker,
            adoption_rates=RATES,
            seed=1,
        )
        forged = adoption_sweep(
            paper_scenario.graph,
            registry,
            target.prefix,
            victim=target.origin_asn,
            attacker=attacker,
            adoption_rates=RATES,
            seed=1,
            forge_origin=True,
        )
        return honest, forged

    honest, forged = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"victim: top guard prefix {target.prefix} (AS{target.origin_asn}); "
        f"attacker AS{attacker}",
        "",
        "ROV adoption   capture (origin-invalid)   capture (forged origin)",
    ]
    for (rate, cap_h), (_r, cap_f) in zip(honest, forged):
        lines.append(f"{rate:10.0%}      {cap_h:12.1%}             {cap_f:12.1%}")
    lines += [
        "",
        "origin validation strangles the classic hijack as adoption grows,",
        "but the forged-origin variant — the one interception attacks use —",
        "keeps its reach: §7's 'techniques that prevent interception attacks",
        "have proven challenging' in one table.",
    ]
    report("E12_rpki", lines)

    honest_caps = [cap for _r, cap in honest]
    assert honest_caps[0] > honest_caps[-1], "adoption should reduce capture"
    assert honest_caps[-1] < 0.05, "full adoption should nearly kill the hijack"
    # the forged variant is (weakly) untouched by adoption
    forged_caps = [cap for _r, cap in forged]
    assert min(forged_caps) > honest_caps[-1]
