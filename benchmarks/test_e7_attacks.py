"""E7 — §3.2: active BGP attacks against Tor relay prefixes.

The paper has no table for this (it argues feasibility), so the harness
quantifies each claim on the synthetic Internet:

- a plain prefix hijack captures routes from a large fraction of ASes and
  reveals the guard's anonymity set, but blackholes the connection;
- a more-specific hijack captures everyone (longest-prefix match);
- an interception keeps a working forwarding path (connection alive) for
  most attacker/victim pairs — the dangerous variant;
- a community-scoped hijack trades reach for stealth;
- intercepting the top-bandwidth guard/exit prefixes yields end-to-end
  correlation coverage over a meaningful share of all Tor circuits.
"""

import pytest

from benchmarks._report import report
from repro.bgpsim.attacks import AttackKind, simulate_hijack
from repro.core.interception import AttackPlanner
from repro.tor.consensus import Position


@pytest.fixture(scope="module")
def planner(paper_scenario):
    return AttackPlanner(paper_scenario.graph, paper_scenario.tor)


def _attack_sweep(scenario, planner, kinds, k=10):
    attacker = scenario.adversary_as()
    targets = [
        t for t in planner.rank_targets(Position.GUARD).top(k + 2)
        if t.origin_asn != attacker
    ][:k]
    rows = {}
    for kind in kinds:
        results = [
            simulate_hijack(scenario.graph, t.origin_asn, attacker, kind)
            for t in targets
        ]
        rows[kind] = results
    return attacker, targets, rows


def test_e7_attack_flavours(benchmark, paper_scenario, planner):
    kinds = (
        AttackKind.SAME_PREFIX,
        AttackKind.MORE_SPECIFIC,
        AttackKind.INTERCEPTION,
        AttackKind.COMMUNITY_SCOPED,
    )
    attacker, targets, rows = benchmark.pedantic(
        _attack_sweep, args=(paper_scenario, planner, kinds), rounds=1, iterations=1
    )

    lines = [
        f"attacker: AS{attacker}; victims: top-{len(targets)} guard prefixes by weight",
        "",
        "attack kind               mean capture   min..max     intercept feasible",
    ]
    means = {}
    for kind, results in rows.items():
        fracs = [r.capture_fraction for r in results]
        mean = sum(fracs) / len(fracs)
        means[kind] = mean
        feas = sum(1 for r in results if r.interception_feasible)
        lines.append(
            f"{kind.value:24s}  {mean:10.1%}   {min(fracs):5.1%}..{max(fracs):5.1%}"
            f"   {feas}/{len(results)}"
        )
    report("E7_attacks", lines)

    # Orderings the paper's argument rests on:
    assert means[AttackKind.MORE_SPECIFIC] == pytest.approx(1.0)
    assert means[AttackKind.SAME_PREFIX] > 0.05
    assert means[AttackKind.INTERCEPTION] <= means[AttackKind.SAME_PREFIX] + 1e-9
    assert means[AttackKind.COMMUNITY_SCOPED] < means[AttackKind.SAME_PREFIX]
    # interception works for most targets ("BGP interceptions have become
    # increasingly common")
    feasible = sum(
        1 for r in rows[AttackKind.INTERCEPTION] if r.interception_feasible
    )
    assert feasible >= 0.6 * len(targets)
    # interception preserves the forwarding path by construction
    for r in rows[AttackKind.INTERCEPTION]:
        if r.interception_feasible:
            assert not set(r.forwarding_path[1:]) & r.capture_set


def test_e7_surveillance_coverage(benchmark, paper_scenario, planner):
    """§3.2 closing claim: intercept top guard+exit prefixes, correlate."""
    attacker = paper_scenario.adversary_as()

    def sweep():
        return {
            k: planner.surveillance_coverage(attacker, guard_k=k, exit_k=k)
            for k in (1, 5, 10, 20, 50)
        }

    coverage = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["k     guard side   exit side   both ends (circuit coverage)"]
    for k, cov in coverage.items():
        lines.append(
            f"{k:3d}   {cov['guard_coverage']:9.1%}  {cov['exit_coverage']:9.1%}"
            f"   {cov['circuit_coverage']:9.2%}"
        )
    lines += [
        "",
        "intercepting ~4% of Tor prefixes lets one transit AS correlate both",
        "ends of a measurable share of ALL Tor circuits (no relays needed).",
    ]
    report("E7_surveillance", lines)

    values = [cov["circuit_coverage"] for cov in coverage.values()]
    assert values == sorted(values), "coverage must grow with k"
    # one mid-tier AS + 50 interceptions => correlates >0.5% of all circuits
    assert coverage[50]["circuit_coverage"] > 0.005
    assert coverage[50]["guard_coverage"] > 0.02


def test_e7_anonymity_set_reduction(benchmark, paper_scenario, planner):
    """Plain hijack reveals which client ASes used the guard (§3.2)."""
    attacker = paper_scenario.adversary_as()
    clients = paper_scenario.client_ases(50)
    target = next(
        t
        for t in planner.rank_targets(Position.GUARD).targets
        if t.origin_asn != attacker
    )
    outcome = benchmark.pedantic(
        planner.attack,
        args=(attacker, target, AttackKind.SAME_PREFIX, clients),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"hijacked guard prefix: {target.prefix} (AS{target.origin_asn})",
        f"monitored client ASes: {len(clients)}",
        f"exposed (in capture set): {len(outcome.exposed_client_ases)}",
        f"anonymity-set fraction: {outcome.anonymity_set_fraction:.1%}",
    ]
    report("E7_anonymity_set", lines)
    assert 0.0 < outcome.anonymity_set_fraction < 1.0
