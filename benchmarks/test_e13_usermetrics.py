"""E13 (extension) — user-level metrics (the Johnson et al. lens).

The related work §6 credits Johnson et al. with "user-understandable
metrics for anonymity"; applied to this paper's AS-level adversary, the
question becomes: over a month of normal Tor use, what fraction of users
has at least one circuit whose both ends a colluding AS pair can observe
— and how fast?  The asymmetric (EITHER-direction) observation model of
§3.3 is compared against the conventional forward-only model to price the
TCP-ACK side channel in user terms.
"""

import pytest

from benchmarks._report import report
from repro.core.surveillance import ObservationMode
from repro.core.usermetrics import simulate_user_population

DAYS = 31
CIRCUITS_PER_DAY = 6


def test_e13_time_to_first_compromise(benchmark, paper_scenario):
    clients = paper_scenario.client_ases(20)
    dests = paper_scenario.destination_ases(8)
    adversaries = {0, paper_scenario.adversary_as()}  # tier-1 + transit colluding

    def run():
        either = simulate_user_population(
            paper_scenario.graph,
            paper_scenario.consensus,
            paper_scenario.relay_asn,
            clients,
            dests,
            adversaries,
            days=DAYS,
            circuits_per_day=CIRCUITS_PER_DAY,
            mode=ObservationMode.EITHER,
            seed=1,
        )
        forward = simulate_user_population(
            paper_scenario.graph,
            paper_scenario.consensus,
            paper_scenario.relay_asn,
            clients,
            dests,
            adversaries,
            days=DAYS,
            circuits_per_day=CIRCUITS_PER_DAY,
            mode=ObservationMode.FORWARD,
            seed=1,
        )
        return either, forward

    either, forward = benchmark.pedantic(run, rounds=1, iterations=1)

    curve = either.fraction_compromised_by_day()
    median = either.median_days_to_compromise()
    lines = [
        f"population: {len(clients)} clients x {DAYS} days x "
        f"{CIRCUITS_PER_DAY} circuits/day; adversary: ASes {sorted(adversaries)}",
        "",
        "day    fraction of users compromised (EITHER mode)",
    ] + [f"{d:4d}   {curve[d-1]:6.1%}" for d in (1, 3, 7, 14, 21, 31)]
    lines += [
        "",
        f"users compromised within the month (asymmetric obs): "
        f"{either.fraction_compromised:.0%}",
        f"users compromised within the month (forward-only):   "
        f"{forward.fraction_compromised:.0%}",
        f"median days to first compromise: "
        + (f"{median:.0f}" if median is not None else ">31 (under half hit)"),
        f"per-circuit compromise rate: {either.mean_circuit_compromise_rate:.2%}",
    ]
    report("E13_usermetrics", lines)

    assert all(a <= b for a, b in zip(curve, curve[1:]))
    assert either.fraction_compromised >= forward.fraction_compromised
    assert either.fraction_compromised > 0, "adversary never saw anything"
