"""E14 (extension) — IXP-level adversaries (Murdoch & Zieliński, PET 2007).

The related work §6 notes Internet-exchange-level adversaries "are also in
a position to observe significant fraction of Internet traffic".  With
peering links grouped into heavy-tailed exchanges, this experiment asks:
what fraction of Tor circuits can each IXP correlate end-to-end (both the
entry and the exit segment crossing its fabric, any direction per §3.3)?
"""

import random

import pytest

from benchmarks._report import report
from repro.core.surveillance import SurveillanceModel


def _circuit_sample(scenario, model, count=120, seed=3):
    rng = random.Random(seed)
    clients = scenario.client_ases(10)
    dests = scenario.destination_ases(6)
    guards = [scenario.relay_asn(g.fingerprint) for g in scenario.consensus.guards()[:40]]
    exits = [scenario.relay_asn(e.fingerprint) for e in scenario.consensus.exits()[:40]]
    sample = []
    for _ in range(count):
        sample.append(
            (rng.choice(clients), rng.choice(guards), rng.choice(exits), rng.choice(dests))
        )
    return sample


def test_e14_ixp_circuit_coverage(benchmark, paper_scenario):
    model = SurveillanceModel(paper_scenario.graph)
    ixps = paper_scenario.ixps(num_ixps=10)
    circuits = _circuit_sample(paper_scenario, model)

    def evaluate():
        per_ixp = {ixp.name: 0 for ixp in ixps.ixps}
        any_ixp = 0
        for client, guard, exit_asn, dest in circuits:
            entry = [model.path(client, guard), model.path(guard, client)]
            exit_paths = [model.path(exit_asn, dest), model.path(dest, exit_asn)]
            observers = ixps.circuit_observers(entry, exit_paths)
            if observers:
                any_ixp += 1
            for name in observers:
                per_ixp[name] += 1
        return per_ixp, any_ixp

    per_ixp, any_ixp = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    sizes = {ixp.name: len(ixp.links) for ixp in ixps.ixps}
    ranked = sorted(per_ixp.items(), key=lambda kv: -kv[1])
    lines = [
        f"{len(ixps)} IXPs over {sum(sizes.values())} peering links; "
        f"{len(circuits)} sampled circuits",
        "",
        "ixp       peering links   circuits correlatable (both ends)",
    ]
    for name, hits in ranked:
        lines.append(f"{name:8s}  {sizes[name]:12d}   {hits:4d}  ({hits/len(circuits):5.1%})")
    lines += [
        "",
        f"circuits correlatable by at least one IXP: {any_ixp/len(circuits):.1%}",
        "a single large exchange sees both ends of a non-trivial circuit share",
        "without controlling any AS — the Murdoch-Zielinski observation.",
    ]
    report("E14_ixp", lines)

    assert any_ixp > 0, "no IXP ever saw both ends"
    top_name, top_hits = ranked[0]
    assert top_hits >= max(1, any_ixp // len(ixps)), "coverage should concentrate"
    # heavy tail: the largest exchange dominates the smallest
    assert top_hits >= ranked[-1][1]
