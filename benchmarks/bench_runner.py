#!/usr/bin/env python
"""Tracked experiment-runner benchmark -> ``results/BENCH_runner.json``.

Runs the resilience sweep (one :mod:`repro.runner` trial per guard
origin) over ``--jobs`` values and emits a machine-readable document so
the sharded backend's scaling is pinned from this PR onward (see
``docs/benchmarks.md`` for the schema).  Every run also cross-checks the
reports value-for-value across jobs values — identical results at any
``jobs`` is the runner's core guarantee — and exits non-zero on any
divergence; the CI smoke job runs a tiny sweep purely for that gate.

The acceptance criterion (>= 2.5x wall-clock at ``--jobs 4``) is only
enforced when the machine actually has >= 4 CPUs: process-pool sharding
cannot beat serial execution on fewer cores than shards, so on smaller
machines the document records the honest measurement and the gate is
reported as skipped (mirroring how ``--smoke`` skips the kernel gate).

Usage::

    PYTHONPATH=src python benchmarks/bench_runner.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_runner.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.asgraph import RoutingEngine, TopologyConfig, generate_topology  # noqa: E402
from repro.core.resilience import resilience_spec  # noqa: E402
from repro.runner import run_experiment  # noqa: E402

SCHEMA_VERSION = 1
DEFAULT_JOBS = [1, 2, 4]
DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "results",
    "BENCH_runner.json",
)
SPEEDUP_TARGET = 2.5
SPEEDUP_AT_JOBS = 4


def _build_world(num_ases: int, num_origins: int, num_attackers: int, seed: int):
    config = TopologyConfig(
        num_ases=num_ases,
        num_tier1=8,
        num_tier2=max(20, num_ases // 10),
        seed=seed,
    )
    graph = generate_topology(config)
    rng = random.Random(seed)
    ases = sorted(graph.ases)
    client = ases[0]
    pool = [asn for asn in ases if asn != client]
    origins = rng.sample(pool, num_origins)
    attackers = rng.sample(pool, num_attackers)
    return graph, client, origins, attackers


def _timed_run(graph, client, origins, attackers, seed, jobs, repeats):
    """Best-of-N wall time for the sweep at one jobs value.

    Each repeat gets a fresh private engine (``jobs=1``) or fresh worker
    processes (``jobs>1``), so no run is flattered by a warm route cache.
    """
    samples = []
    report = None
    for _ in range(repeats):
        spec = resilience_spec(
            graph, client, origins, attackers, seed=seed,
            engine=RoutingEngine() if jobs == 1 else None,
        )
        t0 = time.perf_counter()
        report = run_experiment(spec, jobs=jobs)
        samples.append(time.perf_counter() - t0)
    return {
        "seconds_best": min(samples),
        "seconds_mean": sum(samples) / len(samples),
        "repeats": repeats,
    }, report


def run_suite(
    num_ases: int,
    num_origins: int,
    num_attackers: int,
    jobs_values: List[int],
    repeats: int,
    seed: int,
) -> Dict:
    graph, client, origins, attackers = _build_world(
        num_ases, num_origins, num_attackers, seed
    )
    results: List[Dict] = []
    defects: List[str] = []
    reports: Dict[int, List] = {}
    for jobs in jobs_values:
        row = {
            "workload": "resilience_sweep",
            "jobs": jobs,
            "trials": len(origins),
            "num_ases": num_ases,
            "attackers": num_attackers,
        }
        timing, report = _timed_run(
            graph, client, origins, attackers, seed, jobs, repeats
        )
        row.update(timing)
        results.append(row)
        reports[jobs] = report.results()
        print(
            f"  n={num_ases:>6} trials={len(origins):<4} jobs={jobs}"
            f" best {row['seconds_best']:8.3f} s"
        )

    baseline = reports[jobs_values[0]]
    for jobs in jobs_values[1:]:
        if reports[jobs] != baseline:
            differing = [
                i for i, (a, b) in enumerate(zip(baseline, reports[jobs]))
                if a != b
            ][:5]
            defects.append(
                f"jobs={jobs} report differs from jobs={jobs_values[0]}"
                f" at trial indices {differing}"
            )

    serial = next(r["seconds_best"] for r in results if r["jobs"] == 1)
    speedups = [
        {
            "jobs": r["jobs"],
            "speedup": serial / r["seconds_best"] if r["seconds_best"] else None,
        }
        for r in results
    ]

    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "runner",
        "generated_by": "benchmarks/bench_runner.py",
        "config": {
            "num_ases": num_ases,
            "origins": num_origins,
            "attackers": num_attackers,
            "jobs": jobs_values,
            "repeats": repeats,
            "seed": seed,
        },
        "cpu_count": os.cpu_count(),
        "equivalent": not defects,
        "defects": defects,
        "results": results,
        "speedups": speedups,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-ases", type=int, default=2000)
    parser.add_argument("--origins", type=int, default=48)
    parser.add_argument("--attackers", type=int, default=30)
    parser.add_argument("--jobs", type=int, nargs="+", default=DEFAULT_JOBS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sweep, one repeat (the CI jobs-equivalence gate)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        num_ases, num_origins, num_attackers, repeats = 500, 12, 10, 1
    else:
        num_ases, num_origins, num_attackers, repeats = (
            args.num_ases, args.origins, args.attackers, args.repeats
        )
    jobs_values = sorted(set(args.jobs))
    if 1 not in jobs_values:
        jobs_values = [1] + jobs_values

    document = run_suite(
        num_ases, num_origins, num_attackers, jobs_values, repeats, args.seed
    )

    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    for entry in document["speedups"]:
        print(f"speedup jobs={entry['jobs']} {entry['speedup']:.2f}x")
    if not document["equivalent"]:
        print("JOBS DIVERGENCE DETECTED:", file=sys.stderr)
        for defect in document["defects"]:
            print(f"  - {defect}", file=sys.stderr)
        return 1

    cpus = os.cpu_count() or 1
    gate_jobs = max(j for j in jobs_values)
    if args.smoke or gate_jobs < SPEEDUP_AT_JOBS:
        return 0
    speedup = next(
        e["speedup"] for e in document["speedups"] if e["jobs"] == SPEEDUP_AT_JOBS
    )
    if cpus < SPEEDUP_AT_JOBS:
        print(
            f"speedup gate skipped: {cpus} CPU(s) < {SPEEDUP_AT_JOBS} shards"
            f" (measured {speedup:.2f}x at jobs={SPEEDUP_AT_JOBS})",
            file=sys.stderr,
        )
        return 0
    if speedup < SPEEDUP_TARGET:
        print(
            f"acceptance criterion FAILED: jobs={SPEEDUP_AT_JOBS} speedup"
            f" {speedup:.2f}x < {SPEEDUP_TARGET}x on {cpus} CPUs",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
