"""E5 — Figure 3 (right): extra ASes seeing Tor traffic over a month.

Paper: baseline = the first path of the month per (session, Tor prefix);
count the additional ASes crossed over the month, ignoring any AS on-path
for less than 5 minutes.  Claims: "In 50% of the cases, the number of
ASes seeing Tor traffic increased by 2 over the month.  In 8% of the
cases, the number of ASes increased by more than 5" — significant, since
Internet paths average ~4 ASes.

Includes the dwell-threshold ablation (DESIGN.md): the 5-minute filter is
what separates convergence transients from real exposure.
"""

import pytest

from benchmarks._report import report
from repro.analysis.exposure import ExposureConfig, extra_as_samples
from repro.analysis.stats import Ccdf


def _exposure_pipeline(streams, tor_prefixes, horizon):
    return extra_as_samples(streams, tor_prefixes, horizon)


def test_e5_extra_as_ccdf(benchmark, paper_trace, cleaned_streams):
    extras = benchmark.pedantic(
        _exposure_pipeline,
        args=(cleaned_streams, paper_trace.tor_prefixes, paper_trace.duration),
        rounds=1,
        iterations=1,
    )
    assert len(extras) > 1000
    ccdf = Ccdf.from_samples(extras)

    xs = [1, 2, 3, 5, 10, 15, 20]
    lines = [
        f"samples (session, tor prefix): {len(extras)}",
        "",
        "x (#extra ASes >=5min)    CCDF  P[extra >= x]",
    ] + [f"{x:5d}                     {ccdf.fraction_at_least(x):6.1%}" for x in xs]
    lines += [
        "",
        f"paper: +2 extra ASes in 50% of cases; measured P[extra>=2]: "
        f"{ccdf.fraction_at_least(2):.1%}",
        f"paper: >5 extra in ~8% of cases; measured P[extra>5]: "
        f"{ccdf.fraction_greater(5):.1%}",
        f"median extra ASes: {ccdf.median():.0f}, max: {max(extras)}",
    ]
    report("E5_fig3_right", lines)

    assert ccdf.fraction_at_least(2) >= 0.4
    assert 0.005 <= ccdf.fraction_greater(5) <= 0.25
    assert ccdf.median() >= 1


def test_e5_dwell_threshold_ablation(benchmark, paper_trace, cleaned_streams):
    """Ablation: no dwell filter counts convergence transients as
    observers; stricter filters shrink the exposure monotonically."""
    lines = ["dwell threshold   median extra   P[extra>=2]"]
    streams = cleaned_streams[:20]

    def sweep():
        results = []
        for threshold in (0.0, 60.0, 300.0, 3600.0):
            samples = extra_as_samples(
                streams,
                paper_trace.tor_prefixes,
                paper_trace.duration,
                ExposureConfig(dwell_threshold=threshold),
            )
            results.append((threshold, Ccdf.from_samples(samples)))
        return results

    medians = []
    for threshold, ccdf in benchmark.pedantic(sweep, rounds=1, iterations=1):
        medians.append(ccdf.median())
        lines.append(
            f"{threshold:12.0f} s    {ccdf.median():9.1f}    {ccdf.fraction_at_least(2):8.1%}"
        )
    report("E5_dwell_ablation", lines)
    assert all(a >= b for a, b in zip(medians, medians[1:])), medians

    # the unfiltered count strictly dominates the paper's 5-minute rule
    assert medians[0] >= medians[2]
