"""E4 — Figure 3 (left): Tor prefixes see more path changes than others.

Paper: per (session, Tor prefix), the number of AS-set path changes is
divided by the median change count over all prefixes on that session;
plotted as a CCDF.  Claims: "More than 50% of the time Tor prefixes saw
more changes than any BGP prefix (ratio greater than one)"; one prefix
(178.239.176.0/20) reached >2000x the median; "90% of the Tor prefixes
saw more changes than the median case on at least one session".
"""

import pytest

from benchmarks._report import report
from repro.analysis.pathchanges import session_stats, tor_ratio_samples
from repro.analysis.stats import Ccdf


def _ratio_pipeline(streams, tor_prefixes):
    return tor_ratio_samples(streams, tor_prefixes)


def test_e4_path_change_ratio_ccdf(benchmark, paper_trace, cleaned_streams):
    ratios = benchmark.pedantic(
        _ratio_pipeline,
        args=(cleaned_streams, paper_trace.tor_prefixes),
        rounds=1,
        iterations=1,
    )
    assert len(ratios) > 1000
    ccdf = Ccdf.from_samples(ratios)

    xs = [0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0, 1000.0]
    lines = [
        f"samples (session, tor prefix): {len(ratios)}",
        "",
        "x (ratio)    CCDF  P[ratio >= x]",
    ] + [f"{x:9.1f}    {ccdf.fraction_at_least(x):6.1%}" for x in xs]
    lines += [
        "",
        f"paper: >50% of ratios > 1; measured: {ccdf.fraction_greater(1.0):.1%}",
        f"paper: extreme prefix at >2000x median; measured max: {max(ratios):.0f}x",
    ]

    # "90% of Tor prefixes saw more changes than the median on >=1 session"
    prefixes_above = set()
    prefixes_seen = set()
    for stream in cleaned_streams:
        stats = session_stats(stream)
        if stats.median <= 0:
            continue
        for prefix in stats.counts:
            if prefix in paper_trace.tor_prefixes:
                prefixes_seen.add(prefix)
                ratio = stats.ratio(prefix)
                if ratio is not None and ratio > 1.0:
                    prefixes_above.add(prefix)
    frac_disturbed = len(prefixes_above) / len(prefixes_seen)
    lines.append(
        f"paper: 90% of tor prefixes above median on >=1 session; measured: {frac_disturbed:.1%}"
    )
    report("E4_fig3_left", lines)

    assert ccdf.fraction_greater(1.0) > 0.5
    assert max(ratios) > 100, "extreme-flapper tail missing"
    assert frac_disturbed > 0.6
    # monotone CCDF sanity
    fracs = [ccdf.fraction_at_least(x) for x in xs]
    assert all(a >= b for a, b in zip(fracs, fracs[1:]))


def test_e4_reset_removal_matters(benchmark, paper_trace):
    """Skipping the §4 reset-removal step inflates change counts — the
    reason the methodology bothers with it."""
    from repro.bgpsim.resets import remove_reset_artifacts

    def clean_ten():
        raw = cleaned = 0
        for session in paper_trace.collector_sessions[:10]:
            stream = paper_trace.streams[session]
            raw += len(stream)
            cleaned += len(remove_reset_artifacts(stream))
        return raw, cleaned

    raw_total, cleaned_total = benchmark.pedantic(clean_ten, rounds=1, iterations=1)
    assert cleaned_total < raw_total
