"""E3 — Figure 2 (right): the wide-area asymmetric-observability experiment.

Paper: a large file is downloaded through Tor (torsocks + wget), tcpdump
runs at client and server, and the MBs sent/acknowledged at the four path
segments — guard→client, client→guard, server→exit, exit→server — are
"nearly identical across time".  The paper's figure shows ~42 MB over
~30 seconds.

We run the same download through the simulated circuit and regenerate the
four cumulative curves plus their pairwise agreement.
"""

import pytest

from benchmarks._report import report
from repro.core.asymmetric import correlate_segments
from repro.traffic.circuitsim import CircuitTransfer, TransferConfig

FILE_SIZE = 40_000_000  # the paper's large-file download


def _run_transfer():
    return CircuitTransfer(TransferConfig(file_size=FILE_SIZE)).run()


def test_e3_four_segment_curves(benchmark):
    result = benchmark.pedantic(_run_transfer, rounds=1, iterations=1)
    assert result.completed

    taps = result.taps.all()
    grid = [result.duration * i / 10 for i in range(1, 11)]
    lines = [
        f"transfer: {result.bytes_delivered/1e6:.1f} MB in {result.duration:.1f} s "
        f"({result.throughput/1e6:.2f} MB/s, {result.cells_forwarded} cells, "
        f"{result.sendmes} SENDMEs)",
        "",
        "time(s)  " + "  ".join(f"{cap.name:>16s}" for cap in taps),
    ]
    for t in grid:
        row = "  ".join(f"{cap.cumulative_at(t)/1e6:13.2f} MB" for cap in taps)
        lines.append(f"{t:7.1f}  {row}")

    correlations = correlate_segments(result.taps, bin_width=1.0)
    lines.append("")
    lines.append("pairwise correlations (1 s bins):")
    for (a, b), r in correlations.items():
        lines.append(f"  {a:15s} vs {b:15s}: {r:+.3f}")
    report("E3_fig2_right", lines)

    # Shape: the four cumulative curves nearly coincide at every sample.
    cfg = TransferConfig(file_size=FILE_SIZE)
    capacity = (
        cfg.stream_window * 498 + cfg.server_tcp.rcv_buffer + cfg.client_tcp.rcv_buffer + 20_000
    )
    for t in grid:
        values = [cap.cumulative_at(t) for cap in taps]
        assert max(values) - min(values) <= capacity
        # relative: within 5% of the file at mid-transfer scale
        if min(values) > 0.2 * FILE_SIZE:
            assert (max(values) - min(values)) / FILE_SIZE < 0.05

    for cap in taps:
        assert cap.total_bytes >= FILE_SIZE

    # All four direction pairs correlate strongly.
    for pair, r in correlations.items():
        assert r > 0.5, f"{pair}: {r}"


def test_e3_duration_is_paper_scale(benchmark):
    """~40 MB in tens of seconds, like the paper's plot (0-30 s axis)."""
    result = benchmark.pedantic(_run_transfer, rounds=1, iterations=1)
    assert 10.0 < result.duration < 120.0
