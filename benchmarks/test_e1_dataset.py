"""E1 — §4 "Methodology and datasets" numbers.

Paper values (July 2014 consensus + May 2014 RIPE trace):
- 4586 relays: 1918 guards, 891 exits, 442 flagged both;
- 1251 Tor prefixes announced by 650 distinct ASes;
- relays per Tor prefix: median 1, 75th percentile 2, max 33
  (78.46.0.0/15, which also hosted 22 middle relays → 55 total);
- each Tor prefix received on ~40% of sessions (max 60%);
- every session learned ≥1 Tor prefix; median session carries ~35% of
  Tor prefixes, the richest ~99%.
"""

import pytest

from benchmarks._report import report
from repro.analysis.prefixes import PrefixTrie
from repro.analysis.stats import quantile
from repro.scenario import Scenario, ScenarioConfig


def _dataset_stats(scenario, trace):
    consensus = scenario.consensus
    network = scenario.tor
    ge_counts = {}
    for relay in consensus.relays:
        if relay.is_guard or relay.is_exit:
            prefix = network.relay_prefix[relay.fingerprint]
            ge_counts[prefix] = ge_counts.get(prefix, 0) + 1
    values = list(ge_counts.values())

    sessions = trace.collector_sessions
    visibility = {}
    for session in sessions:
        for prefix in trace.session_prefixes[session] & trace.tor_prefixes:
            visibility[prefix] = visibility.get(prefix, 0) + 1
    vis_fracs = [v / len(sessions) for v in visibility.values()]
    tor_share = [
        len(trace.session_prefixes[s] & trace.tor_prefixes) / len(trace.tor_prefixes)
        for s in sessions
    ]
    return {
        "relays": len(consensus),
        "guards": len(consensus.guards()),
        "exits": len(consensus.exits()),
        "dual": len(consensus.guard_and_exit()),
        "tor_prefixes": len(trace.tor_prefixes),
        "hosting_ases": len({network.prefix_origins[p] for p in trace.tor_prefixes}),
        "relays_per_prefix_median": quantile(values, 0.5),
        "relays_per_prefix_p75": quantile(values, 0.75),
        "relays_per_prefix_max": max(values),
        "sessions": len(sessions),
        "prefix_visibility_mean": sum(vis_fracs) / len(vis_fracs),
        "prefix_visibility_max": max(vis_fracs),
        "session_tor_share_median": quantile(tor_share, 0.5),
        "session_tor_share_max": max(tor_share),
        "all_sessions_have_tor": trace.tor_streams_nonempty(),
    }


def test_e1_dataset_statistics(benchmark, paper_scenario, paper_trace):
    stats = benchmark.pedantic(
        _dataset_stats, args=(paper_scenario, paper_trace), rounds=1, iterations=1
    )

    report(
        "E1_dataset",
        [
            "metric                         paper      measured",
            f"relays                         4586       {stats['relays']}",
            f"guard-flagged                  1918       {stats['guards']}",
            f"exit-flagged                   891        {stats['exits']}",
            f"guard+exit                     442        {stats['dual']}",
            f"tor prefixes                   1251       {stats['tor_prefixes']}",
            f"hosting ASes                   650        {stats['hosting_ases']}",
            f"relays/prefix median           1          {stats['relays_per_prefix_median']:.0f}",
            f"relays/prefix p75              2          {stats['relays_per_prefix_p75']:.0f}",
            f"relays/prefix max              33         {stats['relays_per_prefix_max']}",
            f"eBGP sessions                  >70        {stats['sessions']}",
            f"prefix visibility mean         0.40       {stats['prefix_visibility_mean']:.2f}",
            f"prefix visibility max          0.60       {stats['prefix_visibility_max']:.2f}",
            f"session tor-share median       ~0.35      {stats['session_tor_share_median']:.2f}",
            f"session tor-share max          0.99       {stats['session_tor_share_max']:.2f}",
            f"all sessions saw a tor prefix  yes        {stats['all_sessions_have_tor']}",
        ],
    )

    assert stats["relays"] == pytest.approx(4586, rel=0.05)
    assert stats["guards"] == pytest.approx(1918, rel=0.10)
    assert stats["exits"] == pytest.approx(891, rel=0.15)
    assert stats["dual"] == pytest.approx(442, rel=0.25)
    assert stats["tor_prefixes"] == pytest.approx(1251, rel=0.05)
    assert stats["hosting_ases"] == pytest.approx(650, rel=0.15)
    assert stats["relays_per_prefix_median"] == 1
    assert stats["relays_per_prefix_p75"] <= 3
    assert stats["relays_per_prefix_max"] >= 25
    assert stats["sessions"] > 70
    assert 0.30 <= stats["prefix_visibility_mean"] <= 0.50
    assert stats["prefix_visibility_max"] <= 0.75
    assert 0.2 <= stats["session_tor_share_median"] <= 0.5
    assert stats["session_tor_share_max"] >= 0.85
    assert stats["all_sessions_have_tor"]


def test_e1_longest_prefix_match_pipeline(benchmark, paper_scenario):
    """The pyasn-style relay→prefix mapping at full scale (the paper's
    'for each guard and exit relay, we identified the most specific BGP
    prefix that contained it')."""
    network = paper_scenario.tor
    consensus = paper_scenario.consensus

    def run_mapping():
        trie = PrefixTrie({p: o for p, o in network.prefix_origins.items()})
        mapped = {}
        for relay in consensus.relays:
            match = trie.longest_match(relay.ip)
            if match is not None:
                mapped[relay.fingerprint] = match[0]
        return mapped

    mapped = benchmark(run_mapping)
    assert len(mapped) == len(consensus)
    for fingerprint, prefix in list(mapped.items())[:500]:
        assert prefix == network.relay_prefix[fingerprint]
