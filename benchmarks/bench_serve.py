#!/usr/bin/env python
"""Serving-tier benchmark suite -> ``results/BENCH_serve.json``.

Starts a :class:`~repro.serve.daemon.RoutingDaemon` on an ephemeral port
and measures the unified query API over the wire (see
``docs/benchmarks.md`` for the document schema):

- **cold vs warm throughput** — the same batch workload answered by an
  empty result cache (engine computes every answer) and again once every
  answer is cached; the acceptance criterion requires warm >= 5x cold;
- **latency under concurrency** — per-request p50/p99 for 1, 4, and 16
  concurrent clients hammering single-query batches against a warm cache;
- **bit-identical gate** — every daemon response is compared, in wire
  form, against a direct in-process :class:`QueryFacade` call; any
  divergence fails the run (this is the acceptance criterion the CI
  serve-smoke job also enforces);
- **churn workload** — interleaved ``apply-events`` batches and query
  batches against the live daemon (the warm
  :class:`~repro.serve.pool.SessionPool` path, epoch by epoch) versus a
  cold facade rebuilt per epoch on a fresh engine with that epoch's
  exclusion set; warm must be >= 5x cold and every epoch's responses
  must be bit-identical to the cold recompute.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke   # CI gate
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import sys
import threading
import time
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.asgraph import RoutingEngine, TopologyConfig, generate_topology  # noqa: E402
from repro.serve.api import (  # noqa: E402
    BatchRequest,
    ExposureQuery,
    HijackQuery,
    PathQuery,
    QueryError,
    encode,
)
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.daemon import RoutingDaemon, ServeConfig  # noqa: E402
from repro.serve.facade import QueryFacade  # noqa: E402

SCHEMA_VERSION = 2
DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "results",
    "BENCH_serve.json",
)


class DaemonHandle:
    """A daemon on a background thread; ``stop()`` shuts it down cleanly."""

    def __init__(
        self, graph, cache_entries: int = 65536, pool_entries: int = 256
    ) -> None:
        self.daemon = RoutingDaemon(
            graph,
            engine=RoutingEngine(),
            config=ServeConfig(
                port=0, cache_entries=cache_entries, pool_entries=pool_entries
            ),
        )
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.host = self.port = None

    def _run(self) -> None:
        async def main() -> None:
            self.host, self.port = await self.daemon.start()
            self._started.set()
            await self.daemon.wait_stopped()

        asyncio.run(main())

    def start(self) -> "DaemonHandle":
        self._thread.start()
        if not self._started.wait(30):
            raise RuntimeError("daemon failed to start")
        return self

    def connect(self) -> ServeClient:
        return ServeClient.connect(self.host, self.port)

    def stop(self) -> None:
        try:
            with self.connect() as client:
                client.shutdown()
        except (ConnectionError, OSError):
            pass
        self._thread.join(30)


def _build_world(num_ases: int, seed: int):
    graph = generate_topology(
        TopologyConfig(
            num_ases=num_ases,
            num_tier1=max(4, num_ases // 125),
            num_tier2=max(15, num_ases // 10),
            seed=seed,
        )
    )
    return graph


def _workload(graph, num_queries: int, seed: int) -> List[object]:
    """A deterministic mixed-kind query list (~60/20/20 path/hijack/exposure)."""
    rng = random.Random(seed)
    ases = sorted(graph.ases)
    queries: List[object] = []
    while len(queries) < num_queries:
        roll = rng.random()
        if roll < 0.6:
            src, dst = rng.sample(ases, 2)
            queries.append(PathQuery(src=src, dst=dst))
        elif roll < 0.8:
            victim, attacker, client = rng.sample(ases, 3)
            queries.append(
                HijackQuery(victim=victim, attacker=attacker, clients=(client,))
            )
        else:
            client, guard, exit_asn, dest, adv = rng.sample(ases, 5)
            queries.append(
                ExposureQuery(
                    client=client,
                    guard=guard,
                    exit=exit_asn,
                    dest=dest,
                    adversaries=(adv,),
                )
            )
    return queries


def _chunks(items: List[object], size: int) -> List[Tuple[object, ...]]:
    return [tuple(items[i : i + size]) for i in range(0, len(items), size)]


def _run_batches(client: ServeClient, batches) -> List[object]:
    results: List[object] = []
    for i, chunk in enumerate(batches):
        response = client.batch(chunk, request_id=f"bench-{i}")
        results.extend(response.results)
    return results


def _throughput(handle: DaemonHandle, batches, num_queries: int) -> Dict[str, Dict]:
    """Cold pass then warm pass over the same batches, one connection each."""
    out: Dict[str, Dict] = {}
    remote: List[object] = []
    for phase in ("cold", "warm"):
        with handle.connect() as client:
            t0 = time.perf_counter()
            results = _run_batches(client, batches)
            elapsed = time.perf_counter() - t0
        if phase == "cold":
            remote = results
        out[phase] = {
            "seconds": elapsed,
            "queries": num_queries,
            "qps": num_queries / elapsed if elapsed else None,
        }
    out["remote_results"] = remote
    return out


def _bit_identical_gate(graph, queries, remote_results) -> List[str]:
    """Daemon answers must equal a direct facade's, in wire form."""
    facade = QueryFacade(graph, engine=RoutingEngine())
    defects: List[str] = []
    local = []
    for chunk in _chunks(list(queries), 32):
        local.extend(facade.execute_batch(BatchRequest(queries=chunk)).results)
    for i, (mine, theirs) in enumerate(zip(local, remote_results)):
        if encode(mine) != encode(theirs):
            defects.append(
                f"query {i}: daemon={encode(theirs)} facade={encode(mine)}"
            )
            if len(defects) > 5:
                break
    if len(local) != len(remote_results):
        defects.append(
            f"result count mismatch: facade {len(local)}, daemon {len(remote_results)}"
        )
    return defects


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _latency_under_concurrency(
    handle: DaemonHandle, queries, clients: int, requests_per_client: int
) -> Dict:
    """Warm-cache single-query batches from ``clients`` threads at once."""
    lock = threading.Lock()
    latencies: List[float] = []
    failures: List[str] = []
    start_barrier = threading.Barrier(clients)

    def worker(worker_id: int) -> None:
        rng = random.Random(1000 + worker_id)
        try:
            with handle.connect() as client:
                start_barrier.wait(timeout=30)
                for _ in range(requests_per_client):
                    query = rng.choice(queries)
                    t0 = time.perf_counter()
                    client.batch((query,))
                    dt = time.perf_counter() - t0
                    with lock:
                        latencies.append(dt)
        except Exception as exc:  # noqa: BLE001 — reported in the document
            with lock:
                failures.append(f"client {worker_id}: {exc!r}")

    threads = [
        threading.Thread(target=worker, args=(w,)) for w in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    return {
        "clients": clients,
        "requests": len(latencies),
        "failures": failures,
        "qps": len(latencies) / elapsed if elapsed else None,
        "p50_ms": _percentile(latencies, 0.50) * 1000 if latencies else None,
        "p99_ms": _percentile(latencies, 0.99) * 1000 if latencies else None,
    }


def _core_links(graph, count: int, seed: int) -> List[Tuple[int, int]]:
    """Deterministic sample of well-connected links (churn that bites).

    Random links on a large topology are mostly stub tails whose failure
    repairs nothing; sampling among the best-connected endpoint pairs
    makes each epoch's event batch actually move routes.
    """
    degree = {asn: len(graph.neighbours(asn)) for asn in graph.ases}
    links = sorted(
        (tuple(sorted((a, b))) for a, b, _r in graph.links()),
        key=lambda l: (-(min(degree[l[0]], degree[l[1]])), l),
    )
    pool_size = max(count, len(links) // 10)
    rng = random.Random(seed)
    return rng.sample(links[:pool_size], min(count, pool_size))


def run_churn_suite(
    num_ases: int,
    num_queries: int,
    batch_size: int,
    num_epochs: int,
    seed: int,
) -> Dict:
    """Interleaved churn + queries: warm session pool vs per-epoch cold.

    Epoch ``i`` fails core link ``i`` and restores link ``i - 1``, then
    answers the same mixed workload.  The warm side is the serving
    configuration — ``apply_events`` + pooled sessions + epoch-versioned
    cache; the cold side rebuilds a facade on a fresh engine with the
    epoch's exclusion set and recomputes everything.  Both sides are
    timed in-process through the same ``QueryFacade`` execution path, so
    the ratio measures the pool, not JSON framing.  A live daemon rides
    along (untimed) answering the same events and batches over the wire;
    its responses must match the cold recompute at every epoch — the
    bit-identical acceptance gate.

    The pool is sized to the workload's distinct-origin working set and
    warmed with one untimed pass first — this measures steady-state
    serving under churn, not the one-off session build (which the main
    suite's cold pass already covers).
    """
    from repro.serve.facade import ResultCache
    from repro.serve.pool import SessionPool

    graph = _build_world(num_ases, seed)
    queries = _workload(graph, num_queries, seed + 1)
    batches = _chunks(queries, batch_size)
    links = _core_links(graph, num_epochs, seed + 2)

    warm_engine = RoutingEngine()
    pool = SessionPool(graph, engine=warm_engine, cap=8 * num_queries)
    warm = QueryFacade(
        graph, engine=warm_engine, cache=ResultCache(), pool=pool
    )
    for chunk in batches:  # warm the pool + cache, untimed
        warm.execute_batch(BatchRequest(queries=chunk))

    epochs: List[Dict] = []
    defects: List[str] = []
    warm_total = 0.0
    cold_total = 0.0
    handle = DaemonHandle(graph, pool_entries=8 * num_queries).start()
    try:
        print(f"  churn daemon on {handle.host}:{handle.port}, n={num_ases}")
        with handle.connect() as client:
            _run_batches(client, batches)  # warm the daemon's pool too
            excluded: set = set()
            for i in range(num_epochs):
                events = [("down", links[i])]
                if i > 0:
                    events.append(("up", links[i - 1]))
                excluded.add(frozenset(links[i]))
                if i > 0:
                    excluded.discard(frozenset(links[i - 1]))

                t0 = time.perf_counter()
                report = warm.apply_events(events)
                warm_results: List[object] = []
                for chunk in batches:
                    warm_results.extend(
                        warm.execute_batch(BatchRequest(queries=chunk)).results
                    )
                warm_seconds = time.perf_counter() - t0

                t0 = time.perf_counter()
                cold = QueryFacade(
                    graph, engine=RoutingEngine(), excluded_links=excluded
                )
                cold_results: List[object] = []
                for chunk in batches:
                    cold_results.extend(
                        cold.execute_batch(BatchRequest(queries=chunk)).results
                    )
                cold_seconds = time.perf_counter() - t0

                # the live daemon sees the same epoch, untimed
                wire_report = client.apply_events(events)
                wire_results = _run_batches(client, batches)
                wire_excluded = sorted(sorted(link) for link in excluded)
                if wire_report["excluded"] != wire_excluded:
                    defects.append(
                        f"epoch {wire_report['epoch']}: daemon exclusion set "
                        f"{wire_report['excluded']} != expected {wire_excluded}"
                    )
                for j, (pooled, reference) in enumerate(
                    zip(warm_results, cold_results)
                ):
                    if encode(pooled) != encode(reference):
                        defects.append(
                            f"epoch {report.epoch} query {j}: "
                            f"pooled={encode(pooled)} cold={encode(reference)}"
                        )
                        if len(defects) > 5:
                            break
                for j, (theirs, reference) in enumerate(
                    zip(wire_results, cold_results)
                ):
                    if encode(theirs) != encode(reference):
                        defects.append(
                            f"epoch {report.epoch} query {j}: "
                            f"daemon={encode(theirs)} cold={encode(reference)}"
                        )
                        if len(defects) > 5:
                            break

                warm_total += warm_seconds
                cold_total += cold_seconds
                epochs.append(
                    {
                        "epoch": report.epoch,
                        "events": report.events,
                        "repaired": len(report.repaired_keys),
                        "proven": len(report.proven_keys),
                        "invalidated": report.invalidated,
                        "warm_seconds": warm_seconds,
                        "cold_seconds": cold_seconds,
                    }
                )
                print(
                    f"  epoch {report.epoch}: warm {warm_seconds:.3f}s"
                    f"  cold {cold_seconds:.3f}s"
                    f"  (repaired {len(report.repaired_keys)},"
                    f" proven {len(report.proven_keys)},"
                    f" invalidated {report.invalidated})"
                )
    finally:
        handle.stop()

    stats = pool.stats()
    speedup = cold_total / warm_total if warm_total else None
    return {
        "config": {
            "num_ases": num_ases,
            "num_queries": num_queries,
            "batch_size": batch_size,
            "num_epochs": num_epochs,
            "seed": seed,
        },
        "bit_identical": not defects,
        "defects": defects,
        "warm_seconds": warm_total,
        "cold_seconds": cold_total,
        "speedup": speedup,
        "epochs": epochs,
        "pool": {
            "epoch": stats.epoch,
            "sessions": stats.sessions,
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "repairs": stats.repairs,
            "excluded": sorted(
                sorted(link) for link in pool.excluded_links
            ),
        },
    }


def run_suite(
    num_ases: int,
    num_queries: int,
    batch_size: int,
    concurrency_levels: List[int],
    requests_per_client: int,
    seed: int,
) -> Dict:
    graph = _build_world(num_ases, seed)
    queries = _workload(graph, num_queries, seed + 1)
    batches = _chunks(queries, batch_size)

    handle = DaemonHandle(graph).start()
    try:
        print(f"  daemon on {handle.host}:{handle.port}, n={num_ases}")
        throughput = _throughput(handle, batches, num_queries)
        remote_results = throughput.pop("remote_results")
        for phase in ("cold", "warm"):
            row = throughput[phase]
            print(f"  {phase:<4} {row['qps']:10.1f} qps ({row['seconds']:.3f}s)")

        defects = _bit_identical_gate(graph, queries, remote_results)
        errored = sum(1 for r in remote_results if isinstance(r, QueryError))

        latency = []
        for clients in concurrency_levels:
            row = _latency_under_concurrency(
                handle, queries, clients, requests_per_client
            )
            defects.extend(row["failures"])
            latency.append(row)
            print(
                f"  {clients:>3} client(s): p50 {row['p50_ms']:7.3f} ms"
                f"  p99 {row['p99_ms']:7.3f} ms  {row['qps']:8.1f} qps"
            )
    finally:
        handle.stop()

    warm_speedup = (
        throughput["warm"]["qps"] / throughput["cold"]["qps"]
        if throughput["cold"]["qps"]
        else None
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "serve",
        "generated_by": "benchmarks/bench_serve.py",
        "config": {
            "num_ases": num_ases,
            "num_queries": num_queries,
            "batch_size": batch_size,
            "concurrency_levels": concurrency_levels,
            "requests_per_client": requests_per_client,
            "seed": seed,
        },
        "bit_identical": not defects,
        "defects": defects,
        "query_errors": errored,
        "throughput": {
            "cold": throughput["cold"],
            "warm": throughput["warm"],
            "warm_speedup": warm_speedup,
        },
        "latency": latency,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-ases", type=int, default=500)
    parser.add_argument("--queries", type=int, default=512)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--clients", type=int, nargs="+", default=[1, 4, 16])
    parser.add_argument("--requests-per-client", type=int, default=50)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument(
        "--churn-ases", type=int, default=4000,
        help="world size for the churn workload (the n=4000 gate)",
    )
    parser.add_argument("--churn-epochs", type=int, default=6)
    parser.add_argument("--churn-queries", type=int, default=256)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small world, short workload (the CI bit-identical gate)",
    )
    args = parser.parse_args(argv)

    num_ases = min(args.num_ases, 120) if args.smoke else args.num_ases
    num_queries = min(args.queries, 64) if args.smoke else args.queries
    clients = [c for c in args.clients if c <= 4] if args.smoke else args.clients
    requests = min(args.requests_per_client, 10) if args.smoke else args.requests_per_client
    churn_ases = min(args.churn_ases, 120) if args.smoke else args.churn_ases
    churn_epochs = min(args.churn_epochs, 3) if args.smoke else args.churn_epochs
    churn_queries = min(args.churn_queries, 32) if args.smoke else args.churn_queries

    document = run_suite(
        num_ases, num_queries, args.batch_size, clients, requests, args.seed
    )
    document["churn"] = run_churn_suite(
        churn_ases, churn_queries, args.batch_size, churn_epochs, args.seed
    )

    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    failed = False
    if not document["bit_identical"]:
        print("DAEMON/FACADE DIVERGENCE DETECTED:", file=sys.stderr)
        for defect in document["defects"]:
            print(f"  - {defect}", file=sys.stderr)
        failed = True
    if not document["churn"]["bit_identical"]:
        print("CHURN EPOCH DIVERGENCE DETECTED:", file=sys.stderr)
        for defect in document["churn"]["defects"]:
            print(f"  - {defect}", file=sys.stderr)
        failed = True
    if failed:
        return 1
    speedup = document["throughput"]["warm_speedup"]
    print(f"warm vs cold: {speedup:.2f}x")
    churn_speedup = document["churn"]["speedup"]
    print(f"churn warm-pool vs cold recompute: {churn_speedup:.2f}x")
    if not args.smoke and speedup < 5.0:
        print(
            f"acceptance criterion FAILED: warm-cache throughput"
            f" {speedup:.2f}x < 5x cold",
            file=sys.stderr,
        )
        return 1
    if not args.smoke and churn_speedup < 5.0:
        print(
            f"acceptance criterion FAILED: churn workload warm pool"
            f" {churn_speedup:.2f}x < 5x cold recompute",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
