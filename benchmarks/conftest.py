"""Shared paper-scale fixtures for the benchmark harness.

Everything expensive is built once per session: the §4-scale world
(1000 ASes, ~4586 relays, ~1251 Tor prefixes) and its month-long BGP
trace over 4 collectors / 72 sessions.
"""

from __future__ import annotations

import pytest

from repro.bgpsim.resets import remove_reset_artifacts
from repro.scenario import Scenario, ScenarioConfig


@pytest.fixture(scope="session")
def paper_scenario() -> Scenario:
    return Scenario(ScenarioConfig.paper(seed=0))


@pytest.fixture(scope="session")
def paper_clients(paper_scenario):
    return paper_scenario.client_ases(3)


@pytest.fixture(scope="session")
def paper_trace(paper_scenario, paper_clients):
    """The month of BGP updates at §4 scale (built once; takes minutes)."""
    return paper_scenario.run_trace(observer_asns=paper_clients)


@pytest.fixture(scope="session")
def cleaned_streams(paper_trace):
    """Collector streams with session-reset artefacts removed (§4 method)."""
    return [
        remove_reset_artifacts(paper_trace.streams[s])
        for s in paper_trace.collector_sessions
    ]
