#!/usr/bin/env python
"""Tracked routing-kernel benchmark suite -> ``results/BENCH_kernel.json``.

Sweeps graph sizes x workloads x kernels and emits a machine-readable
document so the perf trajectory of ``compute_routes`` is pinned from this
PR onward (see ``docs/benchmarks.md`` for the schema).  Every run also
cross-checks the two kernels outcome-for-outcome and exits non-zero on any
divergence — the CI smoke job runs the smallest sweep size purely for that
gate.

Workloads, per graph size and per kernel (``legacy`` | ``fast``):

- ``full_route``      one origin announcing, every AS routed (the §3.2
                      capture-set shape; the acceptance criterion's 3x
                      target applies here at the largest size);
- ``targeted_query``  single (src, dst) path queries with the early exit
                      (the trace engine's vantage-point shape);
- ``paths_many``      a cold engine batching clients x guards pairs (the
                      resilience-table shape);
- ``multi_origin``    100 origins routed in one shared propagation
                      (``compute_routes_many``, kernel ``batch``) vs. a
                      loop of ``compute_routes_fast`` runs (kernel
                      ``fast``) — the resilience/surveillance sweep
                      substrate; the acceptance criterion's 5x target
                      applies at the largest size, and every batch row is
                      checked bit-for-bit against its per-origin run.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_kernel.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Callable, Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.asgraph import (  # noqa: E402
    RoutingEngine,
    TopologyConfig,
    compute_routes,
    compute_routes_fast,
    compute_routes_many,
    generate_topology,
)
from repro.asgraph.batch import VECTOR_BACKEND  # noqa: E402
from repro.asgraph.index import graph_index  # noqa: E402
from repro.serve.api import PathBatch  # noqa: E402

SCHEMA_VERSION = 2
DEFAULT_SIZES = [500, 1500, 4000]
DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "results",
    "BENCH_kernel.json",
)
KERNELS: Dict[str, Callable] = {"legacy": compute_routes, "fast": compute_routes_fast}


def _time(fn: Callable[[], object], repeats: int) -> Dict[str, float]:
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "seconds_best": min(samples),
        "seconds_mean": sum(samples) / len(samples),
        "repeats": repeats,
    }


def _build_world(num_ases: int, seed: int):
    config = TopologyConfig(
        num_ases=num_ases,
        num_tier1=8,
        num_tier2=max(20, num_ases // 10),
        seed=seed,
    )
    graph = generate_topology(config)
    t0 = time.perf_counter()
    graph_index(graph)  # steady state for the fast kernel: compiled once
    compile_seconds = time.perf_counter() - t0
    rng = random.Random(seed)
    ases = sorted(graph.ases)
    origin = ases[-1]
    queries = [tuple(rng.sample(ases, 2)) for _ in range(20)]
    clients = rng.sample(ases, 30)
    guards = rng.sample(ases, 6)
    pairs = [(c, g) for c in clients for g in guards]
    batch_origins = rng.sample(ases, min(100, len(ases)))
    meta = {
        "num_ases": num_ases,
        "num_links": graph.num_links(),
        "seed": seed,
        "index_compile_seconds": compile_seconds,
    }
    return graph, meta, origin, queries, pairs, batch_origins


def _check_equivalence(graph, origin, queries, pairs) -> List[str]:
    """Cross-kernel equivalence on this size's workloads; returns defects."""
    defects: List[str] = []
    legacy_full = compute_routes(graph, [origin])
    fast_full = compute_routes_fast(graph, [origin])
    if dict(legacy_full.items()) != dict(fast_full.items()):
        defects.append(f"full_route outcome diverges for origin {origin}")
    for src, dst in queries:
        a = compute_routes(graph, [dst], targets=frozenset((src,))).path(src)
        b = compute_routes_fast(graph, [dst], targets=frozenset((src,))).path(src)
        if a != b:
            defects.append(f"targeted_query path diverges for ({src}, {dst}): {a} != {b}")
    legacy_paths = RoutingEngine(kernel="legacy").paths_many(
        graph, PathBatch.of(pairs)
    ).mapping()
    fast_paths = RoutingEngine(kernel="fast").paths_many(
        graph, PathBatch.of(pairs)
    ).mapping()
    if legacy_paths != fast_paths:
        bad = [k for k in legacy_paths if legacy_paths[k] != fast_paths[k]][:5]
        defects.append(f"paths_many diverges on {len(bad)}+ pairs, e.g. {bad}")
    return defects


def _check_batch_equivalence(graph, batch_origins) -> List[str]:
    """Bit-for-bit per-origin equivalence of the multi-origin batch kernel
    (lengths, parents, kinds; seeds at routed nodes — single-seed batch
    rows share one all-zeros seed array, never read for unrouted nodes)."""
    defects: List[str] = []
    batch = compute_routes_many(graph, [(o,) for o in batch_origins])
    for row, origin in enumerate(batch_origins):
        fast = compute_routes_fast(graph, (origin,))
        got = batch.outcome(row)
        for i in range(len(fast._plen)):
            if (
                int(got._plen[i]) != fast._plen[i]
                or int(got._parent[i]) != fast._parent[i]
                or int(got._kind[i]) != fast._kind[i]
                or (fast._plen[i] and int(got._seed[i]) != fast._seed[i])
            ):
                defects.append(
                    f"multi_origin row {row} (origin {origin}) diverges"
                    f" from compute_routes_fast at node index {i}"
                )
                break
    return defects


def run_suite(sizes: List[int], repeats: int, seed: int) -> Dict:
    results: List[Dict] = []
    defects: List[str] = []
    for num_ases in sizes:
        graph, meta, origin, queries, pairs, batch_origins = _build_world(
            num_ases, seed
        )
        size_defects = _check_equivalence(graph, origin, queries, pairs)
        size_defects += _check_batch_equivalence(graph, batch_origins)
        defects.extend(size_defects)
        for kernel_name, kernel in KERNELS.items():
            workloads = {
                "full_route": lambda k=kernel: k(graph, [origin]),
                "targeted_query": lambda k=kernel: [
                    k(graph, [dst], targets=frozenset((src,))).path(src)
                    for src, dst in queries
                ],
                "paths_many": lambda kn=kernel_name: RoutingEngine(
                    kernel=kn
                ).paths_many(graph, PathBatch.of(pairs)),
            }
            for workload, fn in workloads.items():
                row = {
                    "graph": meta,
                    "workload": workload,
                    "kernel": kernel_name,
                    "queries": {
                        "full_route": 1,
                        "targeted_query": len(queries),
                        "paths_many": len(pairs),
                    }[workload],
                }
                row.update(_time(fn, repeats))
                results.append(row)
                print(
                    f"  n={num_ases:>6} {workload:<16} {kernel_name:<7}"
                    f" best {row['seconds_best'] * 1000:8.2f} ms"
                )
        # multi_origin pits the batch kernel against a loop of fast runs
        # (the legacy kernel is not in this race; "fast" is the baseline).
        for impl_name, fn in (
            (
                "fast",
                lambda: [
                    compute_routes_fast(graph, (o,)) for o in batch_origins
                ],
            ),
            (
                "batch",
                lambda: compute_routes_many(
                    graph, [(o,) for o in batch_origins]
                ).outcomes(),
            ),
        ):
            row = {
                "graph": meta,
                "workload": "multi_origin",
                "kernel": impl_name,
                "queries": len(batch_origins),
                "backend": VECTOR_BACKEND,
            }
            row.update(_time(fn, repeats))
            results.append(row)
            print(
                f"  n={num_ases:>6} {'multi_origin':<16} {impl_name:<7}"
                f" best {row['seconds_best'] * 1000:8.2f} ms"
            )

    speedups = []
    for num_ases in sizes:
        for workload in ("full_route", "targeted_query", "paths_many"):
            pair = {
                r["kernel"]: r["seconds_best"]
                for r in results
                if r["graph"]["num_ases"] == num_ases and r["workload"] == workload
            }
            speedups.append(
                {
                    "num_ases": num_ases,
                    "workload": workload,
                    "speedup": pair["legacy"] / pair["fast"] if pair["fast"] else None,
                }
            )
        pair = {
            r["kernel"]: r["seconds_best"]
            for r in results
            if r["graph"]["num_ases"] == num_ases
            and r["workload"] == "multi_origin"
        }
        speedups.append(
            {
                "num_ases": num_ases,
                "workload": "multi_origin",
                "speedup": pair["fast"] / pair["batch"] if pair["batch"] else None,
            }
        )

    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "kernel",
        "generated_by": "benchmarks/bench_kernel.py",
        "config": {"sizes": sizes, "repeats": repeats, "seed": seed},
        "equivalent": not defects,
        "defects": defects,
        "results": results,
        "speedups": speedups,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=DEFAULT_SIZES)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smallest size only, one repeat (the CI equivalence gate)",
    )
    args = parser.parse_args(argv)

    sizes = [min(args.sizes)] if args.smoke else sorted(args.sizes)
    repeats = 1 if args.smoke else args.repeats
    document = run_suite(sizes, repeats, args.seed)

    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    for entry in document["speedups"]:
        print(
            f"speedup n={entry['num_ases']:>6} {entry['workload']:<16}"
            f" {entry['speedup']:.2f}x"
        )
    if not document["equivalent"]:
        print("KERNEL DIVERGENCE DETECTED:", file=sys.stderr)
        for defect in document["defects"]:
            print(f"  - {defect}", file=sys.stderr)
        return 1
    largest = max(sizes)
    full = next(
        e["speedup"]
        for e in document["speedups"]
        if e["num_ases"] == largest and e["workload"] == "full_route"
    )
    if not args.smoke and full < 3.0:
        print(
            f"acceptance criterion FAILED: full_route speedup {full:.2f}x < 3x"
            f" at n={largest}",
            file=sys.stderr,
        )
        return 1
    multi = next(
        e["speedup"]
        for e in document["speedups"]
        if e["num_ases"] == largest and e["workload"] == "multi_origin"
    )
    # The 5x target assumes the vector backend; the loop fallback (no
    # numpy) still runs the equivalence gate but cannot race itself.
    if not args.smoke and VECTOR_BACKEND == "vector" and multi < 5.0:
        print(
            f"acceptance criterion FAILED: multi_origin speedup {multi:.2f}x"
            f" < 5x at n={largest}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
