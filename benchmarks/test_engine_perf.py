"""RoutingEngine benchmarks: the guard-sweep workload the engine exists for.

A resilience/exposure experiment asks for paths from many clients to the
same small set of guard origins, over and over.  Uncached, that is one
full-topology (or at best one targeted) kernel run per query; the engine
collapses it to one run per distinct guard origin, answered from cache on
every revisit.  These benchmarks pin the speedup and the acceptance
criteria: the cache hit counter must actually fire, and the batched
answers must be byte-identical to per-pair :func:`as_path`.
"""

import random

import pytest

from repro.asgraph import RoutingEngine, TopologyConfig, generate_topology
from repro.asgraph.routing import as_path
from repro.serve.api import PathBatch


@pytest.fixture(scope="module")
def sweep_world():
    """A 1000-AS world plus a guard-sweep workload: 40 clients x 12 guard
    origins, every pair queried (the shape of a resilience table)."""
    graph = generate_topology(TopologyConfig(num_ases=1000, seed=3))
    rng = random.Random(3)
    ases = sorted(graph.ases)
    clients = rng.sample(ases, 40)
    guards = rng.sample(ases, 12)
    pairs = [(c, g) for c in clients for g in guards]
    return graph, pairs


def test_perf_guard_sweep_per_pair_as_path(benchmark, sweep_world):
    """Baseline: one targeted kernel run per (client, guard) query."""
    graph, pairs = sweep_world

    def per_pair():
        return {(s, d): as_path(graph, s, d) for s, d in pairs}

    result = benchmark(per_pair)
    assert len(result) == len(pairs)


def test_perf_guard_sweep_engine_batched(benchmark, sweep_world):
    """The engine groups the sweep into one kernel run per guard origin
    (12 runs instead of 480) and must agree with the baseline exactly."""
    graph, pairs = sweep_world

    def batched():
        return RoutingEngine().paths_many(graph, PathBatch.of(pairs)).mapping()

    result = benchmark(batched)
    assert len(result) == len(pairs)
    rng = random.Random(17)
    for src, dst in rng.sample(pairs, 25):
        assert result[(src, dst)] == as_path(graph, src, dst)


def test_perf_guard_sweep_warm_cache(benchmark, sweep_world):
    """Steady state: a warmed engine answers the whole sweep from cache."""
    graph, pairs = sweep_world
    engine = RoutingEngine()
    batch = PathBatch.of(pairs)
    engine.paths_many(graph, batch)  # warm

    result = benchmark(lambda: engine.paths_many(graph, batch).mapping())

    assert len(result) == len(pairs)
    stats = engine.stats()
    assert stats.hits > 0, "acceptance criterion: cache hit counter fired"
    assert stats.hit_rate > 0.5


def test_perf_repeated_hijack_outcome(benchmark, sweep_world):
    """An attack sweep re-simulating the same (victim, attacker) pair —
    pure memoisation, no batching."""
    graph, _pairs = sweep_world
    engine = RoutingEngine()

    def sweep():
        total = 0
        for _ in range(20):
            outcome = engine.outcome(graph, [500, 700])
            total += len(outcome.capture_set(700))
        return total

    assert benchmark(sweep) > 0
    assert engine.stats().hits > 0
