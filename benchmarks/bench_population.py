#!/usr/bin/env python
"""Tracked population-kernel benchmark -> ``results/BENCH_population.json``.

Races the struct-of-arrays population kernel
(:mod:`repro.core.population`) against the per-user pure-python loop
tier, gates bit-for-bit equivalence between the tiers, across shardings,
and against the ``simulate_user_population`` reference wrapper, and
records the headline population-scale number: 1M users x a month of
relay churn end-to-end on one machine, with throughput in user-days/sec
(see ``docs/benchmarks.md`` for the schema).

Workloads:

- ``reference_loop``  the per-user pure-python tier at the race size —
                      the baseline the ISSUE's 10x criterion applies to;
- ``soa_vector``      the numpy struct-of-arrays tier, same inputs;
- ``scale_month``     1M users x 30 days of churn, vector tier (full
                      mode only) — ROADMAP item 5's gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_population.py          # full
    PYTHONPATH=src python benchmarks/bench_population.py --smoke  # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.core.population import (  # noqa: E402
    POPULATION_BACKEND,
    simulate_population,
)
from repro.core.usermetrics import simulate_user_population  # noqa: E402
from repro.scenario import Scenario, ScenarioConfig  # noqa: E402
from repro.tor.churn import ChurnConfig, evolve_consensus  # noqa: E402
from repro.tor.clientdist import ClientASDistribution  # noqa: E402

SCHEMA_VERSION = 1
DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "results",
    "BENCH_population.json",
)
RACE_USERS = 50_000
SCALE_USERS = 1_000_000
SCALE_DAYS = 30
EQUIV_USERS = 600


def _build_world(seed: int):
    scenario = Scenario(ScenarioConfig.small(seed=seed))
    client_pool = scenario.client_ases(40)
    dests = scenario.destination_ases(6)
    adversaries = frozenset(
        {scenario.adversary_as()}
        | set(sorted(scenario.graph.tier1_ases())[:2])
    )
    return scenario, client_pool, dests, adversaries


def _simulate(scenario, consensus, clients, dests, adversaries, **kwargs):
    return simulate_population(
        scenario.graph,
        consensus,
        scenario.relay_asn,
        clients,
        dests,
        adversaries,
        engine=scenario.engine,
        **kwargs,
    )


def _percentile_fingerprint(report) -> Dict[str, object]:
    """The aggregate-percentile surface the equivalence gate compares."""
    return {
        "curve": report.fraction_compromised_by_day(),
        "fraction": report.fraction_compromised,
        "median": report.median_days_to_compromise(),
        "ttc": [
            report.time_to_compromise_percentile(q)
            for q in (0.1, 0.25, 0.5, 0.75, 0.9)
        ],
        "rate": [
            report.compromise_rate_percentile(q)
            for q in (0.1, 0.25, 0.5, 0.75, 0.9)
        ],
        "first_day_hist": list(report.aggregate.first_day_hist),
        "comp_count_hist": list(report.aggregate.comp_count_hist),
    }


def _check_equivalence(scenario, client_pool, dests, adversaries, days, seed) -> List[str]:
    """SoA == per-user reference at small N, bit for bit."""
    defects: List[str] = []
    roster = [client_pool[i % len(client_pool)] for i in range(EQUIV_USERS)]
    kwargs = dict(days=days, circuits_per_day=6, seed=seed, keep_outcomes=True)
    reference = _simulate(
        scenario, scenario.consensus, roster, dests, adversaries,
        backend="loop", **kwargs
    )
    sharded = _simulate(
        scenario, scenario.consensus, roster, dests, adversaries,
        backend="loop", block_size=101, jobs=2, **kwargs
    )
    if _percentile_fingerprint(sharded) != _percentile_fingerprint(reference):
        defects.append(
            "sharded loop run's aggregate percentiles diverge from the "
            "unsharded reference"
        )
    if sharded.outcomes != reference.outcomes:
        defects.append("sharded loop run's per-user outcomes diverge")
    wrapper = simulate_user_population(
        scenario.graph, scenario.consensus, scenario.relay_asn,
        roster, dests, adversaries,
        days=days, circuits_per_day=6, seed=seed, engine=scenario.engine,
    )
    if wrapper.outcomes != reference.outcomes:
        defects.append(
            "simulate_user_population wrapper diverges from the kernel"
        )
    if POPULATION_BACKEND == "vector":
        vector = _simulate(
            scenario, scenario.consensus, roster, dests, adversaries,
            backend="vector", block_size=77, **kwargs
        )
        if vector.outcomes != reference.outcomes:
            defects.append(
                "vector tier's per-user first-compromise days diverge from "
                "the loop reference"
            )
        if _percentile_fingerprint(vector) != _percentile_fingerprint(reference):
            defects.append(
                "vector tier's aggregate percentiles diverge from the loop "
                "reference"
            )
        dist = ClientASDistribution.zipf(client_pool, exponent=1.0)
        skew_kwargs = dict(kwargs, num_users=EQUIV_USERS)
        skew_loop = _simulate(
            scenario, scenario.consensus, dist, dests, adversaries,
            backend="loop", **skew_kwargs
        )
        skew_vector = _simulate(
            scenario, scenario.consensus, dist, dests, adversaries,
            backend="vector", block_size=53, **skew_kwargs
        )
        if skew_vector.outcomes != skew_loop.outcomes:
            defects.append("skewed-roster runs diverge between tiers")
    return defects


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def run_suite(smoke: bool, seed: int) -> Dict:
    scenario, client_pool, dests, adversaries = _build_world(seed)
    race_days = 5 if smoke else SCALE_DAYS
    equiv_days = 6 if smoke else 10
    results: List[Dict] = []

    print(f"equivalence gate: {EQUIV_USERS} users x {equiv_days} days ...")
    defects = _check_equivalence(
        scenario, client_pool, dests, adversaries, equiv_days, seed
    )

    dist = ClientASDistribution.zipf(client_pool, exponent=1.0)
    race_kwargs = dict(
        num_users=RACE_USERS, days=race_days, circuits_per_day=6,
        seed=seed, keep_outcomes=False,
    )
    print(f"racing {RACE_USERS} users x {race_days} days, loop tier ...")
    loop_report, loop_seconds = _timed(
        lambda: _simulate(
            scenario, scenario.consensus, dist, dests, adversaries,
            backend="loop", **race_kwargs
        )
    )
    results.append({
        "workload": "reference_loop",
        "backend": "loop",
        "users": RACE_USERS,
        "days": race_days,
        "seconds": loop_seconds,
        "user_days_per_sec": RACE_USERS * race_days / loop_seconds,
        "fraction_compromised": loop_report.fraction_compromised,
    })
    print(
        f"  loop   {loop_seconds:8.2f} s"
        f"  ({RACE_USERS * race_days / loop_seconds:12,.0f} user-days/sec)"
    )

    speedup = None
    if POPULATION_BACKEND == "vector":
        vector_report, vector_seconds = _timed(
            lambda: _simulate(
                scenario, scenario.consensus, dist, dests, adversaries,
                backend="vector", **race_kwargs
            )
        )
        results.append({
            "workload": "soa_vector",
            "backend": "vector",
            "users": RACE_USERS,
            "days": race_days,
            "seconds": vector_seconds,
            "user_days_per_sec": RACE_USERS * race_days / vector_seconds,
            "fraction_compromised": vector_report.fraction_compromised,
        })
        print(
            f"  vector {vector_seconds:8.2f} s"
            f"  ({RACE_USERS * race_days / vector_seconds:12,.0f} user-days/sec)"
        )
        if vector_report.aggregate != loop_report.aggregate:
            defects.append(
                f"race aggregates diverge between tiers at {RACE_USERS} users"
            )
        speedup = loop_seconds / vector_seconds if vector_seconds else None

    if not smoke and POPULATION_BACKEND == "vector":
        print(
            f"scale workload: {SCALE_USERS} users x {SCALE_DAYS} days of "
            "relay churn ..."
        )
        series = evolve_consensus(
            scenario.consensus, SCALE_DAYS, ChurnConfig(seed=seed)
        )
        scale_report, scale_seconds = _timed(
            lambda: _simulate(
                scenario, series, dist, dests, adversaries,
                num_users=SCALE_USERS, days=SCALE_DAYS, circuits_per_day=6,
                seed=seed, keep_outcomes=False, backend="vector",
            )
        )
        results.append({
            "workload": "scale_month",
            "backend": "vector",
            "users": SCALE_USERS,
            "days": SCALE_DAYS,
            "churn": True,
            "seconds": scale_seconds,
            "user_days_per_sec": SCALE_USERS * SCALE_DAYS / scale_seconds,
            "fraction_compromised": scale_report.fraction_compromised,
            "median_days": scale_report.median_days_to_compromise(),
        })
        print(
            f"  scale  {scale_seconds:8.2f} s"
            f"  ({SCALE_USERS * SCALE_DAYS / scale_seconds:12,.0f} user-days/sec)"
        )

    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "population",
        "generated_by": "benchmarks/bench_population.py",
        "config": {
            "seed": seed,
            "smoke": smoke,
            "backend": POPULATION_BACKEND,
            "equiv_users": EQUIV_USERS,
            "race_users": RACE_USERS,
            "race_days": race_days,
            "scale_users": None if smoke else SCALE_USERS,
            "scale_days": None if smoke else SCALE_DAYS,
        },
        "equivalent": not defects,
        "defects": defects,
        "results": results,
        "speedups": [
            {
                "workload": "population_race",
                "users": RACE_USERS,
                "days": race_days,
                "speedup": speedup,
            }
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate: equivalence + the 50k-user race at reduced days, "
             "no 1M scale workload",
    )
    args = parser.parse_args(argv)

    document = run_suite(args.smoke, args.seed)

    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if not document["equivalent"]:
        print("POPULATION KERNEL DIVERGENCE DETECTED:", file=sys.stderr)
        for defect in document["defects"]:
            print(f"  - {defect}", file=sys.stderr)
        return 1
    speedup = document["speedups"][0]["speedup"]
    if speedup is not None:
        print(f"speedup vector vs loop at {RACE_USERS} users: {speedup:.2f}x")
    # The 10x criterion assumes the vector backend; the loop fallback (no
    # numpy) still runs the equivalence gates but cannot race itself.
    if POPULATION_BACKEND == "vector" and (speedup is None or speedup < 10.0):
        print(
            f"acceptance criterion FAILED: SoA speedup "
            f"{speedup if speedup is not None else 0:.2f}x < 10x at "
            f"{RACE_USERS} users",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
