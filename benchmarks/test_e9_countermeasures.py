"""E9 — §5: countermeasure evaluation.

The paper proposes four defences without quantifying them; the harness
measures three (IPsec is a deployment recommendation — its effect is
modelled as removing the REVERSE observation channel):

1. dynamics-aware relay selection: compromised-circuit rate before/after;
2. control-plane monitoring: hijack detection rate over injected attacks
   (with the aggressive, false-positive-tolerant configuration);
3. short-AS-PATH guard preference: stealth-hijack exposure before/after;
4. (IPsec proxy) FORWARD-only vs EITHER observation coverage — the gap is
   what hiding TCP headers buys.
"""

import random

import pytest

from benchmarks._report import report
from repro.bgpsim.attacks import simulate_community_scoped_hijack
from repro.bgpsim.collector import UpdateRecord
from repro.core.countermeasures import (
    PrefixMonitor,
    dynamics_aware_filter,
    short_path_guard_weights,
)
from repro.core.surveillance import ObservationMode, SurveillanceModel
from repro.tor.client import TorClient
from repro.tor.consensus import Position
from repro.tor.pathsel import PathConstraints


@pytest.fixture(scope="module")
def world(paper_scenario):
    model = SurveillanceModel(paper_scenario.graph)
    clients = paper_scenario.client_ases(10)
    dests = paper_scenario.destination_ases(5)
    adversaries = frozenset({paper_scenario.adversary_as(), 0})
    return model, clients, dests, adversaries


def _compromised_rate(scenario, model, clients, dests, adversaries, constraints, circuits_per_client=8):
    rng = random.Random(9)
    hits = total = 0
    for client_asn in clients:
        client = TorClient(
            client_asn,
            scenario.consensus,
            rng=random.Random(client_asn),
            constraints=constraints,
        )
        for circuit in client.build_circuits(circuits_per_client):
            dest = rng.choice(dests)
            total += 1
            hits += model.compromised_by(
                adversaries,
                client_asn,
                scenario.relay_asn(circuit.guard.fingerprint),
                scenario.relay_asn(circuit.exit.fingerprint),
                dest,
                ObservationMode.EITHER,
            )
    return hits / total if total else 0.0


def test_e9_dynamics_aware_selection(benchmark, paper_scenario, world):
    model, clients, dests, adversaries = world
    relay_asn = paper_scenario.relay_asn

    def history(relays, peers):
        table = {}
        for relay in relays:
            ases = set()
            for peer in peers:
                ases |= model.segment_view(peer, relay_asn(relay.fingerprint)).either
            table[relay.fingerprint] = frozenset(ases)
        return table

    entry_hist = history(paper_scenario.consensus.guards(), clients)
    exit_hist = history(paper_scenario.consensus.exits(), dests)
    aware_constraints = PathConstraints(
        circuit_filter=dynamics_aware_filter(entry_hist, exit_hist)
    )

    def evaluate():
        baseline = _compromised_rate(
            paper_scenario, model, clients, dests, adversaries, PathConstraints()
        )
        aware = _compromised_rate(
            paper_scenario, model, clients, dests, adversaries, aware_constraints
        )
        return baseline, aware

    baseline, aware = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    report(
        "E9_dynamics_aware",
        [
            f"adversary: colluding ASes {sorted(adversaries)}",
            f"compromised-circuit rate, vanilla Tor:     {baseline:6.1%}",
            f"compromised-circuit rate, dynamics-aware:  {aware:6.1%}",
        ],
    )
    assert aware <= baseline
    assert baseline > 0, "adversary never compromised anything; world too easy"


def test_e9_monitor_detects_injected_hijacks(benchmark, paper_scenario, paper_trace):
    """Inject same-prefix hijacks for 20 Tor prefixes into a session's
    stream; the aggressive monitor must flag every one."""
    session = paper_trace.collector_sessions[0]
    stream = paper_trace.streams[session]
    carried_tor = sorted(stream.prefixes() & paper_trace.tor_prefixes, key=str)
    targets = carried_tor[:20]
    assert targets, "session carries no tor prefixes"
    end = stream.records[-1].time

    def run_monitor():
        monitor = PrefixMonitor(
            {p: paper_trace.prefix_origins[p] for p in paper_trace.tor_prefixes}
        )
        for record in stream:
            monitor.observe(record, session=session)
        for i, prefix in enumerate(targets):
            monitor.observe(
                UpdateRecord(end + 1 + i, prefix, (session[1], 660_000 + i)),
                session=session,
            )
        return monitor

    monitor = benchmark.pedantic(run_monitor, rounds=1, iterations=1)
    detected = sum(1 for p in targets if p in monitor.suspected_prefixes)
    benign_alerts = sum(1 for a in monitor.alerts if a.prefix not in set(targets))
    report(
        "E9_monitor",
        [
            f"injected hijacks: {len(targets)}",
            f"detected: {detected} ({detected/len(targets):.0%})",
            f"alerts not caused by the injected hijacks: {benign_alerts}",
            "(§5: false positives are acceptable; false negatives are not)",
        ],
    )
    assert detected == len(targets)


def test_e9_short_path_preference(benchmark, paper_scenario, world):
    """Stealth-hijack exposure with and without the short-path bias."""
    model, clients, _dests, _advs = world
    consensus = paper_scenario.consensus
    relay_asn = paper_scenario.relay_asn
    attacker = paper_scenario.adversary_as()
    client_asn = clients[0]
    guards = [g for g in consensus.guards() if relay_asn(g.fingerprint) != attacker]

    def path_len(guard):
        path = model.path(client_asn, relay_asn(guard.fingerprint))
        return len(path) if path else None

    spw = short_path_guard_weights(guards, path_len, alpha=2.0)
    capture_cache = {}

    def captured(guard):
        victim = relay_asn(guard.fingerprint)
        if victim not in capture_cache:
            result = simulate_community_scoped_hijack(paper_scenario.graph, victim, attacker)
            capture_cache[victim] = result.capture_set - {attacker}
        client_path = model.path(client_asn, victim) or ()
        return bool(set(client_path) & capture_cache[victim])

    def exposure(weight_fn):
        weights = [max(0.0, weight_fn(g)) for g in guards]
        total = sum(weights)
        return sum(
            w / total for g, w in zip(guards, weights) if w > 0 and captured(g)
        )

    def evaluate():
        base = exposure(lambda g: consensus.position_weight(g, Position.GUARD))
        pref = exposure(
            lambda g: consensus.position_weight(g, Position.GUARD) * spw[g.fingerprint]
        )
        return base, pref

    base, pref = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    report(
        "E9_short_path",
        [
            f"P(guard route crosses stealth-hijack capture set), client AS{client_asn}:",
            f"  bandwidth weighting only:            {base:6.2%}",
            f"  + short-AS-PATH preference (a=2.0):  {pref:6.2%}",
        ],
    )
    assert pref <= base + 1e-9


def test_e9_ipsec_removes_reverse_channel(benchmark, paper_scenario, world):
    """§5 'Mitigating asymmetric traffic analysis': IPsec hides TCP
    headers, collapsing EITHER-direction observation back to FORWARD."""
    model, clients, dests, _advs = world
    rng = random.Random(4)
    circuits = []
    for client_asn in clients[:5]:
        client = TorClient(client_asn, paper_scenario.consensus, rng=random.Random(client_asn))
        for circuit in client.build_circuits(5):
            circuits.append(
                (
                    client_asn,
                    paper_scenario.relay_asn(circuit.guard.fingerprint),
                    paper_scenario.relay_asn(circuit.exit.fingerprint),
                    rng.choice(dests),
                )
            )
    fwd, either = benchmark.pedantic(
        lambda: (
            model.observers_per_circuit(circuits, ObservationMode.FORWARD),
            model.observers_per_circuit(circuits, ObservationMode.EITHER),
        ),
        rounds=1,
        iterations=1,
    )
    mean_fwd = sum(fwd) / len(fwd)
    mean_either = sum(either) / len(either)
    report(
        "E9_ipsec",
        [
            f"circuits sampled: {len(circuits)}",
            f"mean #ASes able to correlate, data-direction only (IPsec world): {mean_fwd:.2f}",
            f"mean #ASes able to correlate, any direction (TLS world):         {mean_either:.2f}",
            f"asymmetric observation inflates the observer set by "
            f"{(mean_either/mean_fwd - 1) if mean_fwd else 0:.0%}",
        ],
    )
    assert mean_either >= mean_fwd
    assert all(e >= f for f, e in zip(fwd, either))
