#!/usr/bin/env python
"""Streaming-trace benchmark suite -> ``results/BENCH_stream.json``.

Gates the stream-first refactor of the trace pipeline (see
``docs/benchmarks.md`` for the document schema):

- **month equivalence** — the windowed ``TraceEngine.run`` must produce a
  ``MonthTrace`` bit-identical to the legacy materialize-then-sort path
  (``run_materialized``), record for record, session for session;
- **resume equivalence** — an :class:`ExposureConsumer` replay
  interrupted mid-run and resumed from its checkpoint must end in exactly
  the state of an uninterrupted replay (same samples, same qualified set,
  same damping state);
- **year scale** — 12 months over 10 collectors streamed through
  :func:`repro.bgpsim.stream.replay`; the acceptance criterion is that
  peak window memory (``peak_window_events``) stays flat as the trace
  grows from one month to a year while total records grow ~linearly;
- **RFD comparison** — dwell-qualified exposed-AS growth with damping
  off vs the Cisco and Juniper vendor defaults, written to
  ``results/E15_rfd.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_stream.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_stream.py --smoke   # CI gate
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
import warnings
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.bgpsim.rfd import ExposureConsumer, RfdFilter, VENDORS  # noqa: E402
from repro.bgpsim.stream import DAY, replay  # noqa: E402
from repro.scenario import Scenario, ScenarioConfig  # noqa: E402

from _report import report  # noqa: E402

SCHEMA_VERSION = 1
DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "results",
    "BENCH_stream.json",
)


def _scenario(
    seed: int,
    duration_days: float,
    collectors: int,
    sessions_per_collector: int,
    **trace_overrides,
) -> Scenario:
    cfg = ScenarioConfig.small(seed=seed)
    cfg = dataclasses.replace(
        cfg,
        trace=dataclasses.replace(
            cfg.trace,
            duration_days=duration_days,
            collector_names=tuple(f"rrc{i:02d}" for i in range(collectors)),
            sessions_per_collector=sessions_per_collector,
            **trace_overrides,
        ),
    )
    return Scenario(cfg)


# -- gate 1: streamed MonthTrace == materialized MonthTrace ------------------


def month_equivalence(seed: int, duration_days: float) -> Dict:
    scenario = _scenario(seed, duration_days, collectors=4, sessions_per_collector=4)

    t0 = time.perf_counter()
    streamed = scenario.build_trace_engine().run()
    streamed_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        materialized = scenario.build_trace_engine().run_materialized()
    materialized_seconds = time.perf_counter() - t0

    defects: List[str] = []
    if streamed.sessions != materialized.sessions:
        defects.append("session rosters differ")
    if streamed.events != materialized.events:
        defects.append("ground-truth event logs differ")
    if streamed.session_prefixes != materialized.session_prefixes:
        defects.append("session prefix tables differ")
    records = 0
    for session in streamed.sessions:
        a = [
            (r.time, r.prefix, r.as_path, r.from_reset)
            for r in streamed.streams[session]
        ]
        b = [
            (r.time, r.prefix, r.as_path, r.from_reset)
            for r in materialized.streams[session]
        ]
        records += len(a)
        if a != b:
            defects.append(f"session {session}: record streams differ")
            if len(defects) > 5:
                break
    return {
        "duration_days": duration_days,
        "records": records,
        "sessions": len(streamed.sessions),
        "streamed_seconds": streamed_seconds,
        "materialized_seconds": materialized_seconds,
        "bit_identical": not defects,
        "defects": defects,
    }


# -- gate 2: checkpoint-resumed replay == uninterrupted ----------------------


class _InterruptAfter:
    """Aborts a replay after N consumed windows (simulated crash)."""

    class Interrupted(Exception):
        pass

    def __init__(self, inner, windows: int) -> None:
        self.inner = inner
        self.windows = windows
        self.consumed = 0

    def consume(self, window) -> None:
        if self.consumed >= self.windows:
            raise self.Interrupted
        self.inner.consume(window)
        self.consumed += 1

    def state(self) -> dict:
        return self.inner.state()

    def restore(self, state: dict) -> None:
        self.inner.restore(state)


def resume_equivalence(
    seed: int, duration_days: float, interrupt_after: int, checkpoint: str
) -> Dict:
    def consumer(scenario):
        stream = scenario.open_trace_stream()
        return stream, ExposureConsumer(
            stream.tor_prefixes, rfd=RfdFilter(VENDORS["cisco"])
        )

    scenario = _scenario(seed, duration_days, collectors=2, sessions_per_collector=4)
    stream, straight = consumer(scenario)
    replay(stream, straight, window_seconds=DAY)

    stream, partial = consumer(scenario)
    try:
        replay(
            stream,
            _InterruptAfter(partial, interrupt_after),
            window_seconds=DAY,
            checkpoint=checkpoint,
        )
        raise RuntimeError("interrupt never fired; shorten interrupt_after")
    except _InterruptAfter.Interrupted:
        pass

    stream, resumed = consumer(scenario)
    resumed_report = replay(
        stream, resumed, window_seconds=DAY, checkpoint=checkpoint, resume=True
    )

    identical = straight.state() == resumed.state()
    return {
        "duration_days": duration_days,
        "interrupted_after_windows": interrupt_after,
        "resumed_windows": resumed_report.resumed_windows,
        "replayed_windows": resumed_report.windows,
        "final_exposed_ases": len(resumed.qualified),
        "bit_identical": identical,
        "defects": [] if identical else ["resumed state differs from uninterrupted"],
    }


# -- gate 3: year-scale replay with flat window memory -----------------------


def year_scale(
    seed: int,
    month_days: float,
    months: List[int],
    collectors: int,
    sessions_per_collector: int,
    flatness_bound: float,
) -> Dict:
    rows = []
    for num_months in months:
        duration_days = month_days * num_months
        scenario = _scenario(seed, duration_days, collectors, sessions_per_collector)
        stream = scenario.open_trace_stream()
        consumer = ExposureConsumer(stream.tor_prefixes)
        t0 = time.perf_counter()
        rep = replay(stream, consumer, window_seconds=DAY)
        elapsed = time.perf_counter() - t0
        rows.append(
            {
                "months": num_months,
                "duration_days": duration_days,
                "windows": rep.windows,
                "records": rep.records,
                "peak_window_events": rep.peak_window_events,
                "seconds": elapsed,
                "records_per_second": rep.records / elapsed if elapsed else None,
            }
        )
        print(
            f"  {num_months:>2} month(s): {rep.records:>9,} records in "
            f"{rep.windows} windows, peak window {rep.peak_window_events:,} "
            f"events, {elapsed:.1f}s"
        )

    peaks = [row["peak_window_events"] for row in rows]
    ratio = max(peaks) / min(peaks) if min(peaks) else float("inf")
    growth = rows[-1]["records"] / rows[0]["records"]
    flat = ratio <= flatness_bound
    return {
        "collectors": collectors,
        "sessions_per_collector": sessions_per_collector,
        "rows": rows,
        "peak_ratio": ratio,
        "records_growth": growth,
        "flatness_bound": flatness_bound,
        "flat": flat,
        "defects": []
        if flat
        else [
            f"peak window events grew {ratio:.2f}x across a {growth:.1f}x "
            f"longer trace (bound {flatness_bound}x)"
        ],
    }


# -- experiment: exposed-AS growth with and without RFD ----------------------


def rfd_comparison(
    seed: int,
    duration_days: float,
    collectors: int,
    sessions_per_collector: int,
    tor_flaps_median: float,
) -> Dict:
    # The Tor flap median is raised to the heavy-flapper regime of
    # Figure 3's tail — damping only engages on dense flap bursts, and
    # those prefixes are exactly where RFD could plausibly blunt the
    # paper's exposure growth.
    variants: Dict[str, Optional[str]] = {
        "undamped": None,
        "cisco": "cisco",
        "juniper": "juniper",
    }
    curves: Dict[str, List] = {}
    stats: Dict[str, Dict] = {}
    for name, vendor in variants.items():
        scenario = _scenario(
            seed,
            duration_days,
            collectors,
            sessions_per_collector,
            tor_flaps_median=tor_flaps_median,
        )
        stream = scenario.open_trace_stream()
        rfd = RfdFilter(VENDORS[vendor]) if vendor else None
        consumer = ExposureConsumer(stream.tor_prefixes, rfd=rfd)
        replay(stream, consumer, window_seconds=DAY)
        curves[name] = [[end / DAY, count] for end, count in consumer.samples]
        stats[name] = {
            "final_exposed_ases": len(consumer.qualified),
            "records_observed": consumer.records,
            "suppressed_records": rfd.suppressed_records if rfd else 0,
            "suppression_episodes": rfd.suppressions if rfd else 0,
        }

    lines = [
        f"E15: exposed-AS growth with and without route-flap damping",
        f"(small world seed {seed}, {duration_days:.0f} days, {collectors} "
        f"collectors x {sessions_per_collector} sessions, dwell >= 5 min, "
        f"tor flap median {tor_flaps_median:g}x — Figure 3's heavy-flap tail)",
        "",
        f"{'variant':<10} {'exposed ASes':>12} {'records seen':>13} "
        f"{'suppressed':>11} {'episodes':>9}",
    ]
    for name in variants:
        s = stats[name]
        lines.append(
            f"{name:<10} {s['final_exposed_ases']:>12,} "
            f"{s['records_observed']:>13,} {s['suppressed_records']:>11,} "
            f"{s['suppression_episodes']:>9,}"
        )
    lines += [
        "",
        "growth curves (day -> cumulative dwell-qualified exposed ASes):",
    ]
    days = [int(point[0]) for point in curves["undamped"]]
    step = max(1, len(days) // 12)
    lines.append(
        f"{'day':>5} " + " ".join(f"{name:>9}" for name in variants)
    )
    for i in range(0, len(days), step):
        lines.append(
            f"{days[i]:>5} "
            + " ".join(f"{int(curves[name][i][1]):>9,}" for name in variants)
        )
    undamped = stats["undamped"]["final_exposed_ases"]
    for vendor in ("cisco", "juniper"):
        kept = stats[vendor]["final_exposed_ases"] / undamped if undamped else 1.0
        lines.append(
            f"\n{vendor}: damping absorbs "
            f"{stats[vendor]['suppressed_records']:,} updates yet "
            f"{kept:.0%} of the undamped exposure remains"
        )
    report("E15_rfd", lines)

    defects: List[str] = []
    for vendor in ("cisco", "juniper"):
        s = stats[vendor]
        # Each suppression episode absorbs its records but may add up to
        # two synthetic events (the withdrawal on entry, the re-announce
        # on release) — that is the only way damping can add records.
        ceiling = (
            stats["undamped"]["records_observed"]
            - s["suppressed_records"]
            + 2 * s["suppression_episodes"]
        )
        if s["records_observed"] > ceiling:
            defects.append(
                f"{vendor} observed {s['records_observed']} records, above the "
                f"absorb/synthesize ceiling {ceiling}"
            )
        if s["final_exposed_ases"] > stats["undamped"]["final_exposed_ases"]:
            defects.append(f"{vendor} exposure exceeds undamped exposure")
    return {
        "duration_days": duration_days,
        "collectors": collectors,
        "stats": stats,
        "curves": curves,
        "defects": defects,
    }


def run_suite(args) -> Dict:
    if args.smoke:
        month_days = 5.0
        months = [1, 2]
        equivalence_days = 5.0
        resume_days = 4.0
        rfd_days, rfd_flaps = 10.0, 20.0
        collectors, sessions = 4, 2
        flatness_bound = 2.0
    else:
        month_days = 30.0
        months = [1, 6, 12]
        equivalence_days = 30.0
        resume_days = 20.0
        rfd_days, rfd_flaps = 30.0, 20.0
        collectors, sessions = 10, 2
        flatness_bound = 1.5

    print("month equivalence (streamed vs materialized)...")
    equivalence = month_equivalence(args.seed, equivalence_days)
    print(
        f"  {equivalence['records']:,} records over "
        f"{equivalence['sessions']} sessions: "
        f"{'bit-identical' if equivalence['bit_identical'] else 'DIVERGED'} "
        f"(streamed {equivalence['streamed_seconds']:.1f}s, "
        f"materialized {equivalence['materialized_seconds']:.1f}s)"
    )

    print("resume equivalence (checkpointed replay)...")
    ckpt = os.path.join(
        os.path.dirname(os.path.abspath(args.out)), ".bench_stream.ckpt"
    )
    try:
        resume = resume_equivalence(
            args.seed, resume_days, interrupt_after=2, checkpoint=ckpt
        )
    finally:
        if os.path.exists(ckpt):
            os.remove(ckpt)
    print(
        f"  resumed past {resume['resumed_windows']} windows, replayed "
        f"{resume['replayed_windows']}: "
        f"{'bit-identical' if resume['bit_identical'] else 'DIVERGED'}"
    )

    print(f"year scale ({months} month(s) x {collectors} collectors)...")
    scale = year_scale(
        args.seed, month_days, months, collectors, sessions, flatness_bound
    )
    print(
        f"  peak window ratio {scale['peak_ratio']:.2f}x across "
        f"{scale['records_growth']:.1f}x more records "
        f"(bound {flatness_bound}x: {'pass' if scale['flat'] else 'FAIL'})"
    )

    print("RFD comparison (undamped vs cisco vs juniper)...")
    rfd = rfd_comparison(
        args.seed,
        rfd_days,
        collectors=4,
        sessions_per_collector=2,
        tor_flaps_median=rfd_flaps,
    )

    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "stream",
        "generated_by": "benchmarks/bench_stream.py",
        "mode": "smoke" if args.smoke else "full",
        "config": {"seed": args.seed},
        "month_equivalence": equivalence,
        "resume_equivalence": resume,
        "year_scale": scale,
        "rfd_comparison": rfd,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short durations, small fan-out (the CI equivalence gate)",
    )
    args = parser.parse_args(argv)

    document = run_suite(args)

    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    defects = (
        document["month_equivalence"]["defects"]
        + document["resume_equivalence"]["defects"]
        + document["year_scale"]["defects"]
        + document["rfd_comparison"]["defects"]
    )
    if defects:
        print("STREAMING GATES FAILED:", file=sys.stderr)
        for defect in defects:
            print(f"  - {defect}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
