"""Substrate micro-benchmarks (multi-round, statistical).

Not paper experiments — these track the performance of the hot paths that
every experiment leans on, so regressions show up in `--benchmark-only`
runs: Gao-Rexford route computation, trie longest-prefix match, the BGP
decision process, message-level convergence, and the TCP engine.
"""

import random

import pytest

from repro.analysis.prefixes import Prefix, PrefixTrie, parse_ip
from repro.asgraph import TopologyConfig, compute_routes, generate_topology
from repro.bgpsim.simulator import BGPSimulator, SimulatorConfig
from repro.traffic.circuitsim import CircuitTransfer, TransferConfig


@pytest.fixture(scope="module")
def graph_1000():
    return generate_topology(TopologyConfig(num_ases=1000, seed=0))


def test_perf_compute_routes_1000_ases(benchmark, graph_1000):
    outcome = benchmark(compute_routes, graph_1000, [500])
    assert len(outcome) == 1000


def test_perf_compute_routes_with_targets(benchmark, graph_1000):
    targets = frozenset(range(8, 80))
    outcome = benchmark(
        compute_routes, graph_1000, [500], None, None, targets
    )
    assert all(outcome.path(t) is not None for t in targets)


def test_perf_hijack_capture_set(benchmark, graph_1000):
    outcome = benchmark(compute_routes, graph_1000, [500, 700])
    assert outcome.capture_set(700)


def test_perf_trie_longest_match(benchmark, paper_scenario):
    trie = PrefixTrie({p: o for p, o in paper_scenario.prefix_origins.items()})
    ips = [r.ip for r in paper_scenario.consensus.relays[:500]]

    def lookup_all():
        return sum(1 for ip in ips if trie.longest_match(ip) is not None)

    assert benchmark(lookup_all) == len(ips)


def test_perf_message_level_convergence(benchmark):
    graph = generate_topology(TopologyConfig(num_ases=100, num_tier1=4, num_tier2=20, seed=2))
    prefix = Prefix.parse("10.0.0.0/24")

    def announce_and_converge():
        sim = BGPSimulator(graph, SimulatorConfig(seed=1))
        sim.announce(60, prefix)
        return sim.run().messages_delivered

    delivered = benchmark(announce_and_converge)
    assert delivered > 0


def test_perf_circuit_transfer_1mb(benchmark):
    def run():
        return CircuitTransfer(TransferConfig(file_size=1_000_000)).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.completed
