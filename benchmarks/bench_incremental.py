#!/usr/bin/env python
"""Incremental-session benchmark suite -> ``results/BENCH_incremental.json``.

Replays churn-event schedules (link fail/restore + vantage path queries,
the ``MonthTrace`` shape) against a stateful
:class:`~repro.asgraph.incremental.DynamicRoutingSession` and against a
fresh targeted :func:`compute_routes_fast` per event, at graph sizes x
churn modes, and emits a machine-readable document (see
``docs/benchmarks.md`` for the schema).  Every run also cross-checks the
session's per-event vantage paths against the fresh kernel — and runs the
end-to-end ``MonthTrace`` with sessions on vs off, requiring bit-identical
update streams — exiting non-zero on any divergence; the CI smoke job runs
the smallest size purely for that gate.

Churn modes:

- ``low``   each link failure is repaired before the next one strikes (the
            dominant single-outage flap pattern; the acceptance criterion's
            5x target applies here at the largest size);
- ``high``  failures accumulate and repairs pick random old outages, so
            exclusion sets grow and restores regularly miss the undo log.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_incremental.py --smoke   # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Callable, Dict, List, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.analysis.prefixes import Prefix  # noqa: E402
from repro.asgraph import (  # noqa: E402
    DynamicRoutingSession,
    RoutingEngine,
    TopologyConfig,
    compute_routes_fast,
    generate_topology,
)
from repro.asgraph.index import graph_index  # noqa: E402
from repro.bgpsim.trace import TraceConfig, TraceEngine  # noqa: E402

SCHEMA_VERSION = 1
DEFAULT_SIZES = [1000, 4000]
DEFAULT_EVENTS = 300
DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "results",
    "BENCH_incremental.json",
)


def _time(fn: Callable[[], object], repeats: int) -> Dict[str, float]:
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "seconds_best": min(samples),
        "seconds_mean": sum(samples) / len(samples),
        "repeats": repeats,
    }


def _build_world(num_ases: int, seed: int):
    config = TopologyConfig(
        num_ases=num_ases,
        num_tier1=8,
        num_tier2=max(20, num_ases // 10),
        seed=seed,
    )
    graph = generate_topology(config)
    graph_index(graph)  # steady state: the index is compiled once per graph
    rng = random.Random(seed)
    ases = sorted(graph.ases)
    origin = rng.choice(ases)
    vantages = rng.sample(ases, 16)
    links = sorted((frozenset((a, b)) for a, b, _rel in graph.links()), key=sorted)
    meta = {"num_ases": num_ases, "num_links": len(links), "seed": seed}
    return graph, meta, origin, vantages, links, rng


def _schedule(
    churn: str, links, num_events: int, rng: random.Random
) -> List[Tuple[str, frozenset]]:
    """A deterministic exclude/restore event schedule."""
    events: List[Tuple[str, frozenset]] = []
    if churn == "low":
        while len(events) < num_events:
            link = rng.choice(links)
            events.append(("exclude", link))
            events.append(("restore", link))
    else:
        down: List[frozenset] = []
        while len(events) < num_events:
            if down and rng.random() < 0.45:
                link = down.pop(rng.randrange(len(down)))
                events.append(("restore", link))
            else:
                link = rng.choice(links)
                if link not in down:
                    down.append(link)
                    events.append(("exclude", link))
    return events[:num_events]


def _replay_incremental(graph, origin, vantages, events) -> None:
    session = DynamicRoutingSession(graph, [origin])
    for op, link in events:
        if op == "exclude":
            session.exclude_link(link)
        else:
            session.restore_link(link)
        for v in vantages:
            session.path(v)


def _replay_full(graph, origin, vantages, events) -> None:
    targets = frozenset(vantages)
    excluded: set = set()
    for op, link in events:
        if op == "exclude":
            excluded.add(link)
        else:
            excluded.discard(link)
        outcome = compute_routes_fast(
            graph, [origin], excluded_links=frozenset(excluded), targets=targets
        )
        for v in vantages:
            outcome.path(v)


def _check_replay_equivalence(graph, origin, vantages, events) -> List[str]:
    """Per-event vantage paths: session vs fresh full compute."""
    defects: List[str] = []
    session = DynamicRoutingSession(graph, [origin])
    excluded: set = set()
    for i, (op, link) in enumerate(events):
        if op == "exclude":
            session.exclude_link(link)
            excluded.add(link)
        else:
            session.restore_link(link)
            excluded.discard(link)
        fresh = compute_routes_fast(
            graph, [origin], excluded_links=frozenset(excluded)
        )
        for v in vantages:
            got, want = session.path(v), fresh.path(v)
            if got != want:
                defects.append(
                    f"event {i} ({op} {sorted(link)}): path({v}) {got} != {want}"
                )
                if len(defects) > 5:
                    return defects
    return defects


def _trace_world(seed: int):
    graph = generate_topology(
        TopologyConfig(num_ases=300, num_tier1=4, num_tier2=30, seed=seed)
    )
    prefixes = {
        Prefix.parse(f"10.{i // 256}.{i % 256}.0/24"): 40 + (i % 200)
        for i in range(40)
    }
    tor = list(prefixes)[:8]
    return graph, prefixes, tor


def _month_trace(seed: int, duration_days: float) -> Tuple[Dict, List[str]]:
    """End-to-end MonthTrace with sessions on vs off; streams must match."""
    graph, prefixes, tor = _trace_world(seed)
    defects: List[str] = []
    timings: Dict[str, float] = {}
    streams: Dict[bool, Dict] = {}
    for incremental in (True, False):
        cfg = TraceConfig(
            duration_days=duration_days, seed=seed, incremental=incremental
        )
        engine = TraceEngine(graph, prefixes, tor, cfg, engine=RoutingEngine())
        t0 = time.perf_counter()
        trace = engine.run()
        timings[incremental] = time.perf_counter() - t0
        streams[incremental] = {
            session: [
                (r.time, str(r.prefix), r.as_path, r.from_reset)
                for r in stream.records
            ]
            for session, stream in trace.streams.items()
        }
    if streams[True] != streams[False]:
        diverged = [
            s for s in streams[True] if streams[True][s] != streams[False].get(s)
        ]
        defects.append(
            f"month_trace streams diverge with sessions on vs off: {diverged[:3]}"
        )
    row = {
        "workload": "month_trace",
        "config": {"seed": seed, "duration_days": duration_days},
        "incremental_seconds": timings[True],
        "full_seconds": timings[False],
        "speedup": timings[False] / timings[True] if timings[True] else None,
    }
    return row, defects


def run_suite(sizes: List[int], num_events: int, repeats: int, seed: int, trace_days: float) -> Dict:
    results: List[Dict] = []
    defects: List[str] = []
    for num_ases in sizes:
        for churn in ("low", "high"):
            graph, meta, origin, vantages, links, rng = _build_world(num_ases, seed)
            events = _schedule(churn, links, num_events, rng)
            defects.extend(
                _check_replay_equivalence(graph, origin, vantages, events)
            )
            for mode, fn in (
                ("incremental", lambda: _replay_incremental(graph, origin, vantages, events)),
                ("full", lambda: _replay_full(graph, origin, vantages, events)),
            ):
                row = {
                    "graph": meta,
                    "workload": "event_replay",
                    "churn": churn,
                    "mode": mode,
                    "events": len(events),
                }
                row.update(_time(fn, repeats))
                results.append(row)
                print(
                    f"  n={num_ases:>6} churn={churn:<4} {mode:<11}"
                    f" best {row['seconds_best'] * 1000:9.2f} ms"
                )

    speedups = []
    for num_ases in sizes:
        for churn in ("low", "high"):
            pair = {
                r["mode"]: r["seconds_best"]
                for r in results
                if r["graph"]["num_ases"] == num_ases and r["churn"] == churn
            }
            speedups.append(
                {
                    "num_ases": num_ases,
                    "churn": churn,
                    "speedup": pair["full"] / pair["incremental"]
                    if pair["incremental"]
                    else None,
                }
            )

    trace_row, trace_defects = _month_trace(seed, trace_days)
    defects.extend(trace_defects)

    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "incremental",
        "generated_by": "benchmarks/bench_incremental.py",
        "config": {
            "sizes": sizes,
            "events": num_events,
            "repeats": repeats,
            "seed": seed,
            "trace_days": trace_days,
        },
        "equivalent": not defects,
        "defects": defects,
        "results": results,
        "speedups": speedups,
        "month_trace": trace_row,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=DEFAULT_SIZES)
    parser.add_argument("--events", type=int, default=DEFAULT_EVENTS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--trace-days", type=float, default=10.0)
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smallest size, fewer events, one repeat (the CI equivalence gate)",
    )
    args = parser.parse_args(argv)

    sizes = [min(args.sizes)] if args.smoke else sorted(args.sizes)
    num_events = min(args.events, 80) if args.smoke else args.events
    repeats = 1 if args.smoke else args.repeats
    trace_days = min(args.trace_days, 3.0) if args.smoke else args.trace_days
    document = run_suite(sizes, num_events, repeats, args.seed, trace_days)

    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    for entry in document["speedups"]:
        print(
            f"speedup n={entry['num_ases']:>6} churn={entry['churn']:<4}"
            f" {entry['speedup']:.2f}x"
        )
    trace = document["month_trace"]
    print(f"month_trace speedup {trace['speedup']:.2f}x")
    if not document["equivalent"]:
        print("INCREMENTAL DIVERGENCE DETECTED:", file=sys.stderr)
        for defect in document["defects"]:
            print(f"  - {defect}", file=sys.stderr)
        return 1
    largest = max(sizes)
    low = next(
        e["speedup"]
        for e in document["speedups"]
        if e["num_ases"] == largest and e["churn"] == "low"
    )
    if not args.smoke and low < 5.0:
        print(
            f"acceptance criterion FAILED: low-churn event-replay speedup"
            f" {low:.2f}x < 5x at n={largest}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
